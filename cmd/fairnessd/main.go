// Command fairnessd serves the fairness Engine over HTTP/JSON: one
// long-lived Engine and one (optionally disk-backed) result cache shared
// by every request, so repeated and overlapping scenario questions get
// answered from cache across clients — and across daemon restarts when
// -cache-dir is set.
//
// Endpoints:
//
//	POST /v1/evaluate  body: one scenario JSON object
//	                   → 200 with the outcome JSON (engine cache applies)
//	POST /v1/sweep     body: a scenario array or a grid object (same
//	                   format as fairsweep -spec files)
//	                   → 200 with application/x-ndjson: one outcome per
//	                   line as it completes, then a final summary line
//	                   {"done":true,...}. Closing the connection cancels
//	                   the sweep within one scenario.
//	POST /v1/shard     cluster work item (internal/cluster): claim a
//	                   shard of scenarios, stream its outcomes as NDJSON,
//	                   finish with a {"done":true,"shard_id":...} summary.
//	POST /v1/shard/ack coordinator confirmation that a shard was merged.
//	GET  /v1/progress  per-shard claimed/streamed/acked progress — the
//	                   live view `fairctl watch` renders.
//	GET  /v1/healthz   → {"status":"ok",...} with backend, cache hit/miss
//	                   counters, shard counters and the measured
//	                   scenarios/sec — everything a coordinator or load
//	                   balancer needs for placement.
//	GET  /v1/traces    flight recorder: recently completed spans (eval/
//	                   stream per shard, plus job/sweep spans when this
//	                   daemon runs the job service), filterable with
//	                   ?trace_id= — what `fairctl trace` reads.
//	GET  /metrics      Prometheus text exposition of the process registry:
//	                   fairness_sweep_*, fairness_cache_*,
//	                   fairness_worker_*, fairness_jobs_*,
//	                   fairness_eval_seconds and the simulation totals.
//	                   Healthz counters read the same registry handles, so
//	                   the two views cannot drift.
//
// With -jobs the daemon additionally runs the multi-tenant job service
// (internal/jobs) and mounts its API:
//
//	POST /v1/jobs                submit a named sweep job (202 + snapshot)
//	GET  /v1/jobs?tenant=&state= list jobs in submission order
//	GET  /v1/jobs/{id}           one job's lifecycle snapshot
//	POST /v1/jobs/{id}/cancel    cancel (partial results are preserved)
//	GET  /v1/jobs/{id}/results   paginated outcomes of a finished job
//
// Jobs from all tenants share one execution substrate under a weighted
// fair-share scheduler; per-tenant quotas, cache namespaces and result
// retention apply (see README "Job service"). By default jobs run on
// the daemon's own engine; with -jobs-cluster the daemon instead
// becomes a job coordinator: it accepts worker self-registration (POST
// /v1/register, i.e. other fairnessd instances started with -register
// pointed here) and fans each job's shards out over the registered
// pool.
//
// Flags:
//
//	-addr ADDR          listen address (default :7447)
//	-pprof              also mount net/http/pprof under /debug/pprof/
//	                    (off by default: profiling endpoints are opt-in)
//	-cache-dir DIR      disk result cache shared across restarts
//	-cache-max-bytes N  size-cap the disk cache: LRU entries are evicted
//	                    once stored outcomes exceed N bytes (0 = unbounded)
//	-cache N            in-memory LRU capacity when -cache-dir is unset
//	-workers N          scenario-level parallelism per sweep (0 = all cores)
//	-backend NAME       montecarlo (default), theory, chainsim or arena
//	-adaptive           early stopping: each scenario's trials is a budget,
//	                    runs halt once the verdict is resolved (montecarlo
//	                    only); tune with -stop-confidence, -stop-min-trials
//	                    and -stop-batch
//	-register URL       coordinator to register with: the worker joins the
//	                    cluster by itself, heartbeats to keep its lease,
//	                    and deregisters gracefully on SIGTERM
//	-advertise URL      own base URL as reachable from the coordinator
//	                    (default: derived from -addr)
//	-heartbeat D        heartbeat interval override (0 = coordinator's
//	                    suggestion, TTL/3)
//	-jobs               run the multi-tenant job service (/v1/jobs)
//	-jobs-cluster       back jobs with self-registering workers instead
//	                    of the local engine (the daemon coordinates)
//	-jobs-max-queued N  per-tenant open-jobs quota (default 16)
//	-jobs-max-inflight N per-tenant in-flight scenario quota (0 = unlimited)
//	-jobs-max-concurrent N jobs running at once (default 64)
//	-jobs-retain N      finished jobs kept per tenant (default 32)
//	-jobs-shard-size N  pin cluster-mode job shards to N scenarios (0 = adaptive)
//	-jobs-weights CSV   per-tenant fair-share weights, "alice=3,bob=1"
//	                    (unlisted tenants weigh 1)
//	-trace FILE         write NDJSON trace events — sweep spans, and with
//	                    -jobs every queue/scheduler decision (job_submit,
//	                    job_dispatch, job_cancel, ...) — to FILE ("-" =
//	                    stderr)
//
// Run several fairnessd instances with -register pointed at a `fairctl
// run -listen` coordinator (plus one shared -cache-dir) and they form a
// self-organizing sweep cluster with a communal warm cache; see README
// "Cluster mode".
//
// Example session:
//
//	fairnessd -addr :7447 -cache-dir /var/cache/fairnessd \
//	    -register http://coordinator:7800 &
//	curl -s localhost:7447/v1/evaluate -d '{"protocol":"mlpos","stake":0.2}'
//	curl -sN localhost:7447/v1/sweep -d '{"protocols":["pow","mlpos"],"stake":[0.1,0.2]}'
//	curl -s localhost:7447/v1/healthz
//	curl -s localhost:7447/v1/progress
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	fairness "repro"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7447", "listen address")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "disk result-cache directory (survives restarts)")
	flag.Int64Var(&cfg.cacheMaxBytes, "cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	flag.IntVar(&cfg.cacheCap, "cache", 4096, "in-memory LRU capacity when -cache-dir is unset (0 = no cache)")
	flag.IntVar(&cfg.workers, "workers", 0, "scenario-level parallelism per sweep (0 = all cores)")
	flag.StringVar(&cfg.backend, "backend", "montecarlo", "evaluator backend: montecarlo, theory, chainsim, arena")
	flag.BoolVar(&cfg.adaptive, "adaptive", false, "adaptive early stopping: treat each scenario's trials as a budget, stop once the verdict is resolved (montecarlo backend only)")
	flag.Float64Var(&cfg.stopConfidence, "stop-confidence", 0, "adaptive stopping error budget across all looks (0 = default)")
	flag.IntVar(&cfg.stopMinTrials, "stop-min-trials", 0, "smallest trial prefix the stopping rule evaluates (0 = default)")
	flag.IntVar(&cfg.stopBatch, "stop-batch", 0, "trial batch size / stopping granularity (0 = default)")
	flag.StringVar(&cfg.register, "register", "", "coordinator base URL to self-register with (heartbeats + graceful deregister)")
	flag.StringVar(&cfg.advertise, "advertise", "", "own base URL as reachable from the coordinator (default: derived from -addr)")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", 0, "registration heartbeat interval (0 = coordinator's suggestion)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.BoolVar(&cfg.jobs, "jobs", false, "run the multi-tenant job service (/v1/jobs)")
	flag.BoolVar(&cfg.jobsCluster, "jobs-cluster", false, "back jobs with self-registering workers (implies -jobs)")
	flag.IntVar(&cfg.jobsMaxQueued, "jobs-max-queued", 0, "per-tenant open-jobs quota (0 = 16)")
	flag.IntVar(&cfg.jobsMaxInflight, "jobs-max-inflight", 0, "per-tenant in-flight scenario quota (0 = unlimited)")
	flag.IntVar(&cfg.jobsMaxConcurrent, "jobs-max-concurrent", 0, "jobs running at once (0 = 64)")
	flag.IntVar(&cfg.jobsRetain, "jobs-retain", 0, "finished jobs kept per tenant (0 = 32)")
	flag.IntVar(&cfg.jobsShardSize, "jobs-shard-size", 0, "pin cluster-mode job shards to N scenarios (0 = adaptive)")
	flag.StringVar(&cfg.jobsWeights, "jobs-weights", "", `per-tenant fair-share weights, "alice=3,bob=1"`)
	trace := flag.String("trace", "", `write NDJSON trace events to FILE ("-" = stderr)`)
	flag.Parse()

	if *trace != "" {
		w := io.Writer(os.Stderr)
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fairnessd:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		cfg.tracer = fairness.NewTracerWithMetrics(w, fairness.DefaultMetrics())
	}
	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairnessd:", err)
		os.Exit(1)
	}
	defer srv.close()
	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Self-registration: announce this worker to the coordinator, renew
	// the membership lease until the signal context ends, then
	// deregister so the coordinator stops scheduling onto us BEFORE the
	// listener drains its in-flight streams.
	registrarDone := make(chan struct{})
	if cfg.register != "" {
		rg, err := srv.registrar(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fairnessd:", err)
			os.Exit(1)
		}
		go func() {
			defer close(registrarDone)
			rg.Run(ctx)
		}()
		fmt.Fprintf(os.Stderr, "fairnessd: registering %s with %s\n", rg.Self, rg.Coordinator)
	} else {
		close(registrarDone)
	}

	// Shutdown returns only once the in-flight handlers drained (or the
	// grace period expired); main must wait for it, or exiting would cut
	// live NDJSON streams mid-scenario.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		<-registrarDone // deregister first: no new shards while draining
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "fairnessd: listening on %s (backend=%s cache=%s)\n",
		cfg.addr, srv.backendName, srv.cacheDesc)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fairnessd:", err)
		os.Exit(1)
	}
	stop() // unblock the shutdown goroutine if the listener failed on its own
	<-shutdownDone
}

// advertiseURL derives the worker's registered base URL from -advertise
// or, failing that, from the listen address: ":7447" advertises
// "http://127.0.0.1:7447" (single-host development), "host:7447"
// advertises itself.
func advertiseURL(advertise, addr string) (string, error) {
	if advertise != "" {
		return cluster.NormalizeWorkerURL(advertise), nil
	}
	if addr == "" {
		return "", fmt.Errorf("-register needs -advertise or a concrete -addr")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return cluster.NormalizeWorkerURL(addr), nil
}

// config assembles a server.
type config struct {
	addr              string
	cacheDir          string
	cacheMaxBytes     int64
	cacheCap          int
	workers           int
	backend           string
	adaptive          bool
	stopConfidence    float64
	stopMinTrials     int
	stopBatch         int
	register          string
	advertise         string
	heartbeat         time.Duration
	pprof             bool
	jobs              bool
	jobsCluster       bool
	jobsMaxQueued     int
	jobsMaxInflight   int
	jobsMaxConcurrent int
	jobsRetain        int
	jobsShardSize     int
	jobsWeights       string
	// metrics overrides the process-global registry (tests inject a
	// fresh one so counters stay hermetic per server).
	metrics *fairness.MetricsRegistry
	// tracer, when non-nil, receives the daemon's NDJSON trace events
	// (-trace; tests inject buffers).
	tracer *fairness.Tracer
}

// server is the HTTP face of one shared Engine. All counters — request
// totals, cache hits, shard lifecycle — live on one telemetry registry;
// /v1/healthz and /metrics read the same handles.
type server struct {
	eng         *fairness.Engine
	cache       fairness.CacheStore
	shards      *cluster.WorkerServer
	metrics     *fairness.MetricsRegistry
	recorder    *fairness.FlightRecorder
	backendName string
	cacheDesc   string
	start       time.Time
	pprof       bool
	evaluates   *fairness.MetricsCounter
	sweeps      *fairness.MetricsCounter
	// The optional multi-tenant job service (-jobs): the manager owns
	// lifecycle/fair-share/quotas/retention, jobsAPI is its HTTP face,
	// and jobsReg (cluster mode only) is the worker membership table
	// jobs dispatch onto.
	jobsMgr *fairness.JobManager
	jobsAPI *fairness.JobServer
	jobsReg *fairness.ClusterRegistry
}

// maxBodyBytes bounds request bodies; scenario documents are tiny.
const maxBodyBytes = 4 << 20

func newServer(cfg config) (*server, error) {
	// The process-global registry aggregates everything this daemon does:
	// engine sweep counters, cache hit/miss, worker shard lifecycle, and
	// the montecarlo/chainsim simulation totals (which register there on
	// their own).
	m := cfg.metrics
	if m == nil {
		m = fairness.DefaultMetrics()
	}
	s := &server{
		start:       time.Now(),
		backendName: cfg.backend,
		cacheDesc:   "none",
		metrics:     m,
		recorder:    fairness.NewFlightRecorder(0),
		pprof:       cfg.pprof,
		evaluates:   m.Counter("fairness_http_requests_total", "endpoint", "evaluate"),
		sweeps:      m.Counter("fairness_http_requests_total", "endpoint", "sweep"),
	}
	if s.backendName == "" {
		s.backendName = "montecarlo"
	}
	ev, err := fairness.BackendByName(s.backendName)
	if err != nil {
		return nil, err
	}
	if cfg.adaptive {
		if ev != nil {
			return nil, fmt.Errorf("fairnessd: -adaptive requires the montecarlo backend, got %q", s.backendName)
		}
		ev = fairness.MonteCarloAdaptiveBackend(fairness.AdaptiveTrials{
			Confidence: cfg.stopConfidence,
			MinTrials:  cfg.stopMinTrials,
			Batch:      cfg.stopBatch,
		})
		// The variant name namespaces caches, cluster shards and metric
		// labels so adaptive results never mix with exhaustive ones.
		s.backendName = ev.Name()
	}
	switch {
	case cfg.cacheDir != "":
		disk, err := fairness.NewDiskCacheWithMetrics(cfg.cacheDir, m)
		if err != nil {
			return nil, err
		}
		if cfg.cacheMaxBytes > 0 {
			disk.SetMaxBytes(cfg.cacheMaxBytes)
		}
		s.cache = disk
		s.cacheDesc = "disk:" + disk.Dir()
	case cfg.cacheCap > 0:
		s.cache = fairness.NewSweepCacheWithMetrics(cfg.cacheCap, m)
		s.cacheDesc = fmt.Sprintf("lru:%d", cfg.cacheCap)
	}
	opts := []fairness.EngineOption{
		fairness.WithWorkers(cfg.workers),
		fairness.WithTelemetry(m, cfg.tracer, s.recorder),
	}
	if s.cache != nil {
		opts = append(opts, fairness.WithCache(s.cache))
	}
	if ev != nil {
		opts = append(opts, fairness.WithBackend(ev))
	}
	s.eng = fairness.NewEngine(opts...)
	// The worker-node face of the cluster protocol: shards evaluate
	// through the same shared Engine (and therefore the same cache) as
	// every other request.
	s.shards = cluster.NewWorkerServerWithMetrics(func(ctx context.Context, specs []scenario.Spec, on func(sweep.Outcome)) (sweep.Stats, error) {
		rep, err := s.eng.SweepObserved(ctx, specs, on)
		if rep != nil {
			return rep.Stats, err
		}
		return sweep.Stats{}, err
	}, m)
	// Worker-side spans: each claimed shard evaluates under an eval span
	// parented (via X-Fairness-Trace) on the coordinator's dispatch span,
	// retained here for GET /v1/traces.
	s.shards.SetTelemetry(s.backendName, cfg.tracer, s.recorder)
	if cfg.jobs || cfg.jobsCluster {
		if err := s.initJobs(cfg, m, ev); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// initJobs assembles the multi-tenant job service. Local mode runs jobs
// on this daemon's engine configuration, chunked through the fair-share
// gate so concurrent tenants interleave; cluster mode makes the daemon a
// coordinator dispatching each job's shards onto self-registered
// workers.
func (s *server) initJobs(cfg config, m *fairness.MetricsRegistry, ev fairness.Evaluator) error {
	weights, err := parseWeights(cfg.jobsWeights)
	if err != nil {
		return err
	}
	jcfg := fairness.JobConfig{
		MaxQueuedPerTenant:   cfg.jobsMaxQueued,
		MaxInflightPerTenant: cfg.jobsMaxInflight,
		MaxConcurrentJobs:    cfg.jobsMaxConcurrent,
		RetainPerTenant:      cfg.jobsRetain,
		Weights:              weights,
		Cache:                s.cache,
		Metrics:              m,
		Tracer:               cfg.tracer,
		Recorder:             s.recorder,
	}
	if cfg.jobsCluster {
		reg := fairness.NewClusterRegistry(s.backendName, 0)
		s.jobsReg = reg
		jcfg.Runner = fairness.JobClusterRunner(fairness.ClusterOptions{
			Registry:  reg,
			Backend:   s.backendName,
			ShardSize: cfg.jobsShardSize,
			Metrics:   m,
			Tracer:    cfg.tracer,
			Recorder:  s.recorder,
		})
		// Twice the live pool keeps every worker busy while still forcing
		// tenants to contest dispatch under saturation.
		jcfg.Capacity = func() int { return 2 * len(reg.Live()) }
	} else {
		jcfg.Runner = fairness.JobLocalRunner(fairness.SweepOptions{
			Workers:   cfg.workers,
			Evaluator: ev,
			Metrics:   m,
			Tracer:    cfg.tracer,
		}, 0)
	}
	mgr, err := fairness.NewJobManager(jcfg)
	if err != nil {
		return err
	}
	s.jobsMgr = mgr
	s.jobsAPI = fairness.NewJobServer(mgr)
	return nil
}

// parseWeights parses the -jobs-weights CSV ("alice=3,bob=1.5").
func parseWeights(csv string) (map[string]float64, error) {
	if csv == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, val, ok := strings.Cut(part, "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("-jobs-weights: bad entry %q (want tenant=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-jobs-weights: bad weight %q for tenant %q", val, tenant)
		}
		out[tenant] = w
	}
	return out, nil
}

// close shuts the job service down: live jobs are cancelled (keeping
// their partial reports) and their goroutines joined.
func (s *server) close() {
	if s.jobsMgr != nil {
		s.jobsMgr.Close()
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /v1/traces", fairness.TracesHandler(s.recorder))
	mux.Handle("GET /metrics", fairness.MetricsHandler(s.metrics))
	if s.pprof {
		telemetry.RegisterPprof(mux)
	}
	s.shards.Register(mux) // /v1/shard, /v1/shard/ack, /v1/progress
	if s.jobsAPI != nil {
		s.jobsAPI.Register(mux) // /v1/jobs...
	}
	if s.jobsReg != nil {
		// Cluster-mode job service: accept worker self-registration on
		// the same listener (fairnessd -register http://this-daemon).
		fairness.NewClusterRegistryServer(s.jobsReg).RegisterMembership(mux)
	}
	return mux
}

// registrar assembles the worker-side registration client: heartbeats
// carry the live scenarios/sec EWMA so the coordinator can size shards
// before it has observed this worker itself.
func (s *server) registrar(cfg config) (*cluster.Registrar, error) {
	self, err := advertiseURL(cfg.advertise, cfg.addr)
	if err != nil {
		return nil, err
	}
	return &cluster.Registrar{
		Coordinator: cfg.register,
		Self:        self,
		Backend:     s.backendName,
		Rate:        s.shards.Rate,
		Interval:    cfg.heartbeat,
		OnError: func(err error) {
			fmt.Fprintln(os.Stderr, "fairnessd: register:", err)
		},
	}, nil
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// handleEvaluate answers one scenario through the shared Engine: cache
// hits are served without computing, and the outcome records which
// backend produced it.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.evaluates.Inc()
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := scenario.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.eng.EvaluateScenario(r.Context(), spec)
	switch {
	case errors.Is(err, context.Canceled):
		return // client went away; nothing to write
	case err != nil:
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// sweepSummary is the trailing NDJSON line of a /v1/sweep response.
type sweepSummary struct {
	Done      bool    `json:"done"`
	Scenarios int     `json:"scenarios"`
	Streamed  int     `json:"streamed"`
	CacheHits int     `json:"cache_hits"`
	WallMS    float64 `json:"wall_ms"`
	Partial   bool    `json:"partial,omitempty"`
}

// handleSweep expands the request into a scenario list and streams one
// NDJSON outcome line per scenario as the shared Engine completes it,
// then a summary line. The request context cancels the sweep, so a
// dropped connection stops computing within one scenario.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweeps.Inc()
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := decodeSpecs(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	sum := sweepSummary{Scenarios: len(specs)}
	for out, err := range s.eng.Stream(r.Context(), specs) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return // client went away mid-stream
			}
			sum.Partial = true
			enc.Encode(map[string]string{"error": err.Error()})
			break
		}
		sum.Streamed++
		if out.CacheHit {
			sum.CacheHits++
		}
		if enc.Encode(out) != nil {
			return // write failure: the connection is gone
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.Done = !sum.Partial
	sum.WallMS = float64(time.Since(start).Microseconds()) / 1000
	enc.Encode(sum)
}

// handleHealthz reports liveness plus the shared cache and backend
// state. It is probe-friendly: everything reported is O(1) — notably it
// never walks the disk cache (cache hit/miss and shard counters read
// the same telemetry-registry handles /metrics scrapes, and an entry
// count is only included for the in-memory LRU, whose Len is
// constant-time).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status  string `json:"status"`
		Backend string `json:"backend"`
		// Capabilities is the backend's declared scenario coverage, so a
		// coordinator (or an operator's curl) can see up front whether
		// this worker answers adversarial or fork-aware scenarios.
		Capabilities     fairness.Capabilities `json:"capabilities"`
		Cache            string                `json:"cache"`
		CacheLen         *int                  `json:"cache_len,omitempty"`
		CacheHits        *uint64               `json:"cache_hits,omitempty"`
		CacheMisses      *uint64               `json:"cache_misses,omitempty"`
		Evaluates        int64                 `json:"evaluates"`
		Sweeps           int64                 `json:"sweeps"`
		ShardsClaimed    int64                 `json:"shards_claimed"`
		ShardsInFlight   int64                 `json:"shards_in_flight"`
		ShardsDone       int64                 `json:"shards_done"`
		ShardsAcked      int64                 `json:"shards_acked"`
		OutcomesStreamed int64                 `json:"outcomes_streamed"`
		ScenariosPerSec  float64               `json:"scenarios_per_sec"`
		PendingAcks      int                   `json:"pending_acks"`
		UptimeMS         int64                 `json:"uptime_ms"`
		GoMaxProcs       int                   `json:"gomaxprocs"`
	}
	caps := s.eng.Capabilities()
	h := health{
		Status:           "ok",
		Backend:          s.backendName,
		Capabilities:     caps,
		Cache:            s.cacheDesc,
		Evaluates:        s.evaluates.Value(),
		Sweeps:           s.sweeps.Value(),
		ShardsClaimed:    s.shards.Claimed(),
		ShardsInFlight:   s.shards.InFlight(),
		ShardsDone:       s.shards.Done(),
		ShardsAcked:      s.shards.Acked(),
		OutcomesStreamed: s.shards.Streamed(),
		ScenariosPerSec:  s.shards.Rate(),
		PendingAcks:      s.shards.PendingAcks(),
		UptimeMS:         time.Since(s.start).Milliseconds(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}
	if c, ok := s.cache.(interface{ Counters() (hits, misses uint64) }); ok {
		hits, misses := c.Counters()
		h.CacheHits, h.CacheMisses = &hits, &misses
	}
	if lru, ok := s.cache.(*fairness.SweepCache); ok {
		n := lru.Len()
		h.CacheLen = &n
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// decodeSpecs accepts either an explicit scenario array or a grid object
// — the same two formats fairsweep -spec files use — and returns the
// validated scenario list.
func decodeSpecs(body []byte) ([]fairness.Scenario, error) {
	return scenario.DecodeSpecsOrGrid(body, 0)
}

// statusFor maps evaluation errors onto HTTP statuses: spec problems and
// backend-coverage gaps are the client's fault, everything else is ours.
func statusFor(err error) int {
	if errors.Is(err, scenario.ErrSpec) || errors.Is(err, fairness.ErrBackend) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
