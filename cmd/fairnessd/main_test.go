package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	fairness "repro"
	"repro/internal/cluster"
	"repro/internal/scenario"
)

// testServer boots the handler stack over httptest with a small default
// configuration.
func testServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	if cfg.metrics == nil {
		// A fresh registry per server: the production default registry is
		// process-global, which would leak counters between tests.
		cfg.metrics = fairness.NewMetricsRegistry()
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

type outcomeLine struct {
	Name     string `json:"name"`
	Hash     string `json:"hash"`
	Backend  string `json:"backend"`
	CacheHit bool   `json:"cache_hit"`
	Verdict  struct {
		Protocol          string
		UnfairProbability float64
	} `json:"verdict"`
	Error string `json:"error"`
	Done  *bool  `json:"done"`
}

func TestEvaluateEndpointWithSharedCache(t *testing.T) {
	_, ts := testServer(t, config{cacheCap: 16})
	body := `{"protocol":"pow","stake":0.2,"blocks":200,"trials":20,"seed":3}`

	post := func() outcomeLine {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var o outcomeLine
		if err := json.NewDecoder(resp.Body).Decode(&o); err != nil {
			t.Fatal(err)
		}
		return o
	}
	first := post()
	if first.Hash == "" || first.Backend != "montecarlo" || first.CacheHit {
		t.Errorf("first outcome: %+v", first)
	}
	second := post()
	if !second.CacheHit {
		t.Error("second identical request should hit the shared cache")
	}
	if second.Verdict.UnfairProbability != first.Verdict.UnfairProbability {
		t.Error("cache changed the verdict")
	}
}

func TestEvaluateEndpointRejectsBadSpecs(t *testing.T) {
	_, ts := testServer(t, config{})
	for _, body := range []string{
		`{"protocol":"nope"}`,
		`{"protocl":"pow"}`, // typo field
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestSweepEndpointStreamsNDJSON(t *testing.T) {
	_, ts := testServer(t, config{cacheCap: 64})
	grid := `{"base":{"blocks":150,"trials":15,"seed":5},"protocols":["pow","mlpos"],"stake":[0.2,0.3]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var outcomes []outcomeLine
	var summary *outcomeLine
	for dec.More() {
		var line outcomeLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Done != nil {
			summary = &line
			break
		}
		outcomes = append(outcomes, line)
	}
	if len(outcomes) != 4 {
		t.Fatalf("streamed %d outcomes, want 4", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Hash == "" || o.Verdict.Protocol == "" {
			t.Errorf("incomplete outcome: %+v", o)
		}
	}
	if summary == nil || !*summary.Done {
		t.Fatalf("missing/failed summary line: %+v", summary)
	}

	// The same sweep again is answered from the shared cache.
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	dec2 := json.NewDecoder(resp2.Body)
	hits := 0
	for dec2.More() {
		var line outcomeLine
		if err := dec2.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Done == nil && line.CacheHit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("second sweep: %d cache hits, want 4", hits)
	}
}

func TestSweepEndpointAcceptsExplicitArray(t *testing.T) {
	_, ts := testServer(t, config{})
	body := `[{"protocol":"pow","blocks":100,"trials":10},{"protocol":"slpos","blocks":100,"trials":10}]`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	count := 0
	for dec.More() {
		var line outcomeLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Done == nil {
			count++
		}
	}
	if count != 2 {
		t.Errorf("streamed %d outcomes, want 2", count)
	}
}

func TestSweepEndpointRejectsBadBodies(t *testing.T) {
	_, ts := testServer(t, config{})
	for _, body := range []string{`[]`, `{"protocls":["pow"]}`, `[{"protocol":"nope"}]`} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	cacheDir := t.TempDir()
	_, ts := testServer(t, config{cacheDir: cacheDir, backend: "theory"})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Backend string `json:"backend"`
		Cache   string `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Backend != "theory" || !strings.HasPrefix(h.Cache, "disk:") {
		t.Errorf("healthz: %+v", h)
	}
}

func TestUnknownBackendConfig(t *testing.T) {
	if _, err := newServer(config{backend: "quantum"}); err == nil {
		t.Error("unknown backend should fail construction")
	}
}

func TestDiskCacheSharedAcrossDaemonRestarts(t *testing.T) {
	// Boot, sweep, shut down; boot a second daemon over the same cache
	// directory: every scenario is a hit.
	dir := t.TempDir()
	grid := `{"base":{"blocks":120,"trials":10,"seed":9},"protocols":["pow","mlpos"],"stake":[0.2]}`

	_, ts1 := testServer(t, config{cacheDir: dir})
	resp, err := http.Post(ts1.URL+"/v1/sweep", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts1.Close()

	_, ts2 := testServer(t, config{cacheDir: dir})
	resp2, err := http.Post(ts2.URL+"/v1/sweep", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	dec := json.NewDecoder(resp2.Body)
	hits, total := 0, 0
	for dec.More() {
		var line outcomeLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Done != nil {
			continue
		}
		total++
		if line.CacheHit {
			hits++
		}
	}
	if total != 2 || hits != 2 {
		t.Errorf("restarted daemon: %d/%d cache hits, want 2/2", hits, total)
	}
}

func TestShardEndpointClaimStreamAckAndHealthzCounters(t *testing.T) {
	// The worker-node face of cluster mode: claim a shard, count the
	// streamed outcomes, then check the healthz placement counters and
	// the ack handshake.
	_, ts := testServer(t, config{cacheCap: 16})
	shard := `{"shard_id":"deadbeef","scenarios":[
		{"protocol":"pow","stake":0.2,"blocks":100,"trials":10,"seed":4},
		{"protocol":"mlpos","stake":0.2,"blocks":100,"trials":10,"seed":4}]}`
	resp, err := http.Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	outcomes := 0
	var sum struct {
		Done      bool   `json:"done"`
		ShardID   string `json:"shard_id"`
		Streamed  int    `json:"streamed"`
		TrialsRun int64  `json:"trials_run"`
	}
	for dec.More() {
		var line outcomeLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Done != nil {
			sum.Done, sum.Streamed = *line.Done, outcomes
			continue
		}
		outcomes++
	}
	if outcomes != 2 || !sum.Done {
		t.Fatalf("shard stream: %d outcomes, done=%v", outcomes, sum.Done)
	}

	var h struct {
		ShardsInFlight int64 `json:"shards_in_flight"`
		ShardsDone     int64 `json:"shards_done"`
		PendingAcks    int   `json:"pending_acks"`
	}
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ShardsInFlight != 0 || h.ShardsDone != 1 || h.PendingAcks != 1 {
		t.Errorf("healthz shard counters: %+v", h)
	}

	ack, err := http.Post(ts.URL+"/v1/shard/ack", "application/json",
		strings.NewReader(`{"shard_id":"deadbeef"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer ack.Body.Close()
	var acked struct {
		Acked bool `json:"acked"`
	}
	if err := json.NewDecoder(ack.Body).Decode(&acked); err != nil {
		t.Fatal(err)
	}
	if !acked.Acked {
		t.Error("ack of a completed shard reported acked=false")
	}
}

func TestClusterCoordinatorAgainstTwoDaemons(t *testing.T) {
	// The acceptance criterion, in-process: a coordinator over two real
	// fairnessd workers sharing one cache directory must produce a report
	// bit-identical (modulo timing/cache bookkeeping) to a single-process
	// Engine.Sweep of the same spec.
	sharedCache := t.TempDir()
	_, w1 := testServer(t, config{cacheDir: sharedCache})
	_, w2 := testServer(t, config{cacheDir: sharedCache})

	grid := fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 150, Trials: 15},
		Protocols: []string{"pow", "mlpos", "slpos"},
		Stake:     []float64{0.1, 0.3},
		Seed:      21,
	}
	specs, err := fairness.ExpandScenarios(grid)
	if err != nil {
		t.Fatal(err)
	}
	local, err := fairness.NewEngine().Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	eng := fairness.NewEngine(fairness.WithCluster(fairness.ClusterOptions{
		Workers: []string{w1.URL, w2.URL},
	}))
	dist, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(outs []fairness.SweepOutcome) string {
		c := make([]fairness.SweepOutcome, len(outs))
		copy(c, outs)
		for i := range c {
			c[i].ElapsedMS = 0
			c[i].CacheHit = false
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := canon(dist.Outcomes), canon(local.Outcomes); got != want {
		t.Errorf("cluster report differs from local Engine.Sweep:\n%s\n%s", got, want)
	}
	if dist.Stats.Scenarios != local.Stats.Scenarios {
		t.Errorf("stats: cluster %+v, local %+v", dist.Stats, local.Stats)
	}

	// Second pass through the same engine: the workers' shared disk cache
	// answers everything, with no new computation anywhere.
	warm, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.TrialsRun != 0 {
		t.Errorf("warm cluster pass ran %d trials, want 0", warm.Stats.TrialsRun)
	}
	if got, want := canon(warm.Outcomes), canon(local.Outcomes); got != want {
		t.Error("warm cluster report differs from local Engine.Sweep")
	}
}

func TestAdvertiseURLDerivation(t *testing.T) {
	cases := []struct {
		advertise, addr, want string
		wantErr               bool
	}{
		{"http://w1:7447", ":9999", "http://w1:7447", false},
		{"w1:7447", ":9999", "http://w1:7447", false},
		{"", ":7447", "http://127.0.0.1:7447", false},
		{"", "10.0.0.5:7447", "http://10.0.0.5:7447", false},
		{"", "", "", true},
	}
	for _, c := range cases {
		got, err := advertiseURL(c.advertise, c.addr)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("advertiseURL(%q, %q) = %q, %v; want %q, err=%v",
				c.advertise, c.addr, got, err, c.want, c.wantErr)
		}
	}
}

func TestProgressEndpointAndHealthzShardCounters(t *testing.T) {
	_, ts := testServer(t, config{cacheCap: 16})
	shard := `{"shard_id":"cafebabe","scenarios":[
		{"protocol":"pow","stake":0.25,"blocks":100,"trials":10,"seed":6}]}`
	resp, err := http.Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	pr, err := http.Get(ts.URL + "/v1/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var p struct {
		ShardsClaimed    int64   `json:"shards_claimed"`
		ShardsDone       int64   `json:"shards_done"`
		OutcomesStreamed int64   `json:"outcomes_streamed"`
		ScenariosPerSec  float64 `json:"scenarios_per_sec"`
		Shards           []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.ShardsClaimed != 1 || p.ShardsDone != 1 || p.OutcomesStreamed != 1 || p.ScenariosPerSec <= 0 {
		t.Errorf("progress: %+v", p)
	}
	if len(p.Shards) != 1 || p.Shards[0].ID != "cafebabe" || p.Shards[0].State != "done" {
		t.Errorf("per-shard progress: %+v", p.Shards)
	}

	// Healthz mirrors the same counters for coordinator placement.
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct {
		ShardsClaimed    int64   `json:"shards_claimed"`
		OutcomesStreamed int64   `json:"outcomes_streamed"`
		ScenariosPerSec  float64 `json:"scenarios_per_sec"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ShardsClaimed != 1 || h.OutcomesStreamed != 1 || h.ScenariosPerSec <= 0 {
		t.Errorf("healthz shard counters: %+v", h)
	}
}

func TestSelfRegisteredWorkerJoinsCoordinatorRun(t *testing.T) {
	// End-to-end self-organization in-process: a coordinator run starts
	// against an EMPTY registry, a real fairnessd worker self-registers
	// through its Registrar mid-run, and the merged report matches a
	// local Engine.Sweep bit for bit.
	srv, ts := testServer(t, config{cacheCap: 64})

	reg := cluster.NewRegistry("montecarlo", time.Minute)
	regSrv := cluster.NewRegistryServer(reg)
	coordMux := http.NewServeMux()
	regSrv.Register(coordMux)
	coord := httptest.NewServer(coordMux)
	t.Cleanup(coord.Close)

	rgCtx, rgCancel := context.WithCancel(context.Background())
	rgDone := make(chan struct{})
	rg, err := srv.registrar(config{register: coord.URL, advertise: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	rg.Interval = 20 * time.Millisecond
	go func() {
		defer close(rgDone)
		rg.Run(rgCtx)
	}()

	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 120, Trials: 12},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.4},
		Seed:      31,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := fairness.NewEngine().Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	eng := fairness.NewEngine(fairness.WithCluster(fairness.ClusterOptions{Registry: reg}))
	dist, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(outs []fairness.SweepOutcome) string {
		c := make([]fairness.SweepOutcome, len(outs))
		copy(c, outs)
		for i := range c {
			c[i].ElapsedMS = 0
			c[i].CacheHit = false
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := canon(dist.Outcomes), canon(local.Outcomes); got != want {
		t.Errorf("self-registered cluster report differs from local Engine.Sweep:\n%s\n%s", got, want)
	}

	// Graceful shutdown deregisters the worker from the coordinator.
	rgCancel()
	select {
	case <-rgDone:
	case <-time.After(2 * time.Second):
		t.Fatal("registrar did not stop")
	}
	if n := len(reg.Live()); n != 0 {
		t.Errorf("worker still registered after graceful shutdown: %d members", n)
	}
}

// jobGrid is a small submission spec shared by the job-service tests.
const jobGrid = `{"base":{"blocks":150,"trials":10},"protocols":["pow","mlpos"],"stake":[0.2,0.3]}`

// normalizeJobOutcomes strips timing/cache bookkeeping for bit-exact
// report comparison.
func normalizeJobOutcomes(t *testing.T, outs []fairness.SweepOutcome) string {
	t.Helper()
	c := make([]fairness.SweepOutcome, len(outs))
	copy(c, outs)
	for i := range c {
		c[i].ElapsedMS = 0
		c[i].CacheHit = false
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestJobServiceLocalModeEndToEnd(t *testing.T) {
	srv, ts := testServer(t, config{jobs: true, cacheCap: 64})
	defer srv.close()
	client := fairness.NewJobClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	info, err := client.Submit(ctx, fairness.JobSubmitBody{
		Name: "daemon-e2e", Tenant: "acme", Seed: 5,
		Spec: json.RawMessage(jobGrid),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != fairness.JobStateQueued || info.Scenarios != 4 {
		t.Fatalf("submitted job: %+v", info)
	}
	if info, err = client.Wait(ctx, info.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info.State != fairness.JobStateDone || info.Partial {
		t.Fatalf("finished job: %+v", info)
	}
	_, outs, err := client.Results(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := scenario.DecodeSpecsOrGrid([]byte(jobGrid), 5)
	if err != nil {
		t.Fatal(err)
	}
	local, err := fairness.Sweep(specs, fairness.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeJobOutcomes(t, outs), normalizeJobOutcomes(t, local.Outcomes); got != want {
		t.Errorf("job report differs from local sweep:\n%s\n%s", got, want)
	}

	// The job counters surface on the daemon's /metrics exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series, err := fairness.ParseMetricsText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if series[`fairness_jobs_submitted_total{tenant="acme"}`] != 1 {
		t.Errorf("submitted counter missing: %v", series)
	}
	if series[`fairness_jobs_finished_total{state="done"}`] != 1 {
		t.Errorf("finished counter missing")
	}
}

func TestJobServiceClusterModeDispatchesOverRegisteredWorkers(t *testing.T) {
	// Coordinator daemon: job service over self-registering workers.
	coord, coordTS := testServer(t, config{jobsCluster: true})
	defer coord.close()
	if coord.jobsMgr == nil || coord.jobsReg == nil {
		t.Fatal("-jobs-cluster did not assemble the cluster-backed job service")
	}

	client := fairness.NewJobClient(coordTS.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Submit before any worker exists: the job must wait, not fail —
	// and the waiting state must be visible on the cluster gauge.
	info, err := client.Submit(ctx, fairness.JobSubmitBody{
		Name: "cluster-job", Tenant: "acme", Seed: 9,
		Spec: json.RawMessage(jobGrid),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two worker daemons join through the coordinator's /v1/register —
	// the exact flow `fairnessd -register http://coordinator` runs.
	for i := 0; i < 2; i++ {
		_, workerTS := testServer(t, config{})
		reg := &cluster.Registrar{Coordinator: coordTS.URL, Self: workerTS.URL, Backend: "montecarlo"}
		regCtx, stopReg := context.WithCancel(ctx)
		defer stopReg()
		go reg.Run(regCtx)
	}

	if info, err = client.Wait(ctx, info.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info.State != fairness.JobStateDone || info.Partial {
		t.Fatalf("cluster job: %+v", info)
	}
	_, outs, err := client.Results(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := scenario.DecodeSpecsOrGrid([]byte(jobGrid), 9)
	if err != nil {
		t.Fatal(err)
	}
	local, err := fairness.Sweep(specs, fairness.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeJobOutcomes(t, outs), normalizeJobOutcomes(t, local.Outcomes); got != want {
		t.Errorf("cluster job report differs from local sweep:\n%s\n%s", got, want)
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("alice=3,bob=1.5, carol=2 ,")
	if err != nil {
		t.Fatal(err)
	}
	if w["alice"] != 3 || w["bob"] != 1.5 || w["carol"] != 2 || len(w) != 3 {
		t.Errorf("parsed weights: %v", w)
	}
	for _, bad := range []string{"alice", "alice=0", "alice=-1", "=2", "alice=x"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) should fail", bad)
		}
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Errorf("empty weights: %v %v", w, err)
	}
}
