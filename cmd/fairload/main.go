// Command fairload is the job-service load generator: it plays N
// tenants submitting mixed-size sweep jobs against one fairnessd -jobs
// server concurrently, then reports how fairly the service treated
// them — per-tenant makespan, and Jain's fairness index over the
// scheduler's dispatch allocations scraped from the server's /metrics
// (the fairness_jobs_scenarios_dispatched_total{tenant=...} series).
//
// Jain's index over allocations x_1..x_n is (Σx)² / (n·Σx²): 1.0 means
// perfectly even treatment, 1/n means one tenant monopolized the
// scheduler. Allocations are measured at the last scrape taken while
// every tenant still had work in flight — after that, counts converge
// to the per-tenant totals no matter how unfairly they interleaved.
//
// Usage:
//
//	fairload -server http://host:7447 -tenants 4 -jobs 3
//
// Flags:
//
//	-server URL   job server base URL (fairnessd -jobs; default 127.0.0.1:7447)
//	-tenants N    concurrent tenants (default 3)
//	-jobs N       jobs per tenant (default 4); sizes cycle small/medium/large
//	-blocks N     horizon per scenario (default 150)
//	-trials N     Monte-Carlo trials per scenario (default 10)
//	-seed S       base seed; tenant t job j sweeps seed S+1000t+j
//	-poll D       metrics scrape and job poll interval (default 100ms)
//	-timeout D    overall deadline (default 5m)
//	-json         machine-readable report instead of the table
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	fairness "repro"
	"repro/internal/table"
)

// stdout/stderr are swapped by tests.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairload:", err)
		os.Exit(1)
	}
}

// jobShapes are the mixed sizes submissions cycle through: 2, 4 and 6
// scenarios per job, so big and small jobs genuinely contend.
var jobShapes = []struct {
	protocols []string
	stakes    []float64
}{
	{[]string{"pow"}, []float64{0.2, 0.3}},
	{[]string{"pow", "mlpos"}, []float64{0.2, 0.3}},
	{[]string{"pow", "mlpos", "slpos"}, []float64{0.2, 0.3}},
}

// tenantReport is one tenant's slice of the final report.
type tenantReport struct {
	Tenant     string  `json:"tenant"`
	Jobs       int     `json:"jobs"`
	Scenarios  int     `json:"scenarios"`
	MakespanMS int64   `json:"makespan_ms"`
	Dispatched float64 `json:"dispatched_at_contention"`
}

// report is the -json document.
type report struct {
	Tenants    []tenantReport `json:"tenants"`
	JainsIndex float64        `json:"jains_index"`
	// ContentionMS is how long every tenant simultaneously had work in
	// flight — the window the fairness index quantifies over.
	ContentionMS int64 `json:"contention_ms"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairload", flag.ContinueOnError)
	server := fs.String("server", "", "job server base URL (default 127.0.0.1:7447)")
	tenants := fs.Int("tenants", 3, "concurrent tenants")
	jobs := fs.Int("jobs", 4, "jobs per tenant")
	blocks := fs.Int("blocks", 150, "horizon per scenario")
	trials := fs.Int("trials", 10, "Monte-Carlo trials per scenario")
	seed := fs.Uint64("seed", 1, "base seed (tenant t job j sweeps seed+1000t+j)")
	poll := fs.Duration("poll", 100*time.Millisecond, "metrics scrape and job poll interval")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	asJSON := fs.Bool("json", false, "machine-readable report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *jobs < 1 {
		return fmt.Errorf("need at least one tenant and one job per tenant")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	client := fairness.NewJobClient(*server)
	base := strings.TrimRight(client.Base, "/")
	if base == "" {
		base = "127.0.0.1:7447"
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	baseline, err := scrapeDispatched(ctx, base)
	if err != nil {
		return fmt.Errorf("scrape %s/metrics: %w (is the server running with -jobs?)", base, err)
	}

	// The sampler: scrape dispatch counters every poll tick, keeping the
	// last sample taken while every tenant was still unfinished. finished
	// is flipped per tenant by the submit goroutines.
	var (
		mu           sync.Mutex
		finished     = map[string]bool{}
		contention   map[string]float64 // last all-in-flight sample
		contentionAt time.Time
	)
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t-%d", i)
		finished[names[i]] = false
	}
	samplerDone := make(chan struct{})
	samplerCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-tick.C:
			}
			sample, err := scrapeDispatched(samplerCtx, base)
			if err != nil {
				continue
			}
			mu.Lock()
			all := true
			for _, name := range names {
				if finished[name] {
					all = false
					break
				}
			}
			if all {
				contention, contentionAt = sample, time.Now()
			}
			mu.Unlock()
		}
	}()

	// One goroutine per tenant: submit every job up front (that is what
	// creates queue pressure), then wait for all of them.
	start := time.Now()
	reports := make([]tenantReport, *tenants)
	errs := make([]error, *tenants)
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := names[i]
			rep := tenantReport{Tenant: tenant, Jobs: *jobs}
			ids := make([]string, 0, *jobs)
			for j := 0; j < *jobs; j++ {
				shape := jobShapes[(i+j)%len(jobShapes)]
				spec := map[string]any{
					"base":      map[string]any{"blocks": *blocks, "trials": *trials},
					"protocols": shape.protocols,
					"stake":     shape.stakes,
				}
				raw, err := json.Marshal(spec)
				if err != nil {
					errs[i] = err
					return
				}
				info, err := client.Submit(ctx, fairness.JobSubmitBody{
					Name:   fmt.Sprintf("load-%s-%d", tenant, j),
					Tenant: tenant,
					Seed:   *seed + uint64(1000*i+j),
					Spec:   raw,
				})
				if err != nil {
					errs[i] = fmt.Errorf("submit %s job %d: %w", tenant, j, err)
					return
				}
				rep.Scenarios += info.Scenarios
				ids = append(ids, info.ID)
			}
			for _, id := range ids {
				info, err := client.Wait(ctx, id, *poll)
				if err != nil {
					errs[i] = fmt.Errorf("wait %s: %w", id, err)
					return
				}
				if info.State != fairness.JobStateDone {
					errs[i] = fmt.Errorf("job %s finished %s", id, info.State)
					return
				}
			}
			rep.MakespanMS = time.Since(start).Milliseconds()
			mu.Lock()
			finished[tenant] = true
			mu.Unlock()
			reports[i] = rep
		}(i)
	}
	wg.Wait()
	stopSampler()
	<-samplerDone
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Allocation deltas over the contention window; the final counters
	// are the fallback when the window closed before the first scrape
	// (tiny runs).
	mu.Lock()
	sample := contention
	sampledAt := contentionAt
	mu.Unlock()
	if sample == nil {
		if sample, err = scrapeDispatched(ctx, base); err != nil {
			return err
		}
		sampledAt = time.Now()
	}
	allocations := make([]float64, *tenants)
	for i, name := range names {
		allocations[i] = sample[name] - baseline[name]
		reports[i].Dispatched = allocations[i]
	}
	jain := jainsIndex(allocations)

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report{
			Tenants:      reports,
			JainsIndex:   jain,
			ContentionMS: sampledAt.Sub(start).Milliseconds(),
		})
	}
	tb := table.New("Tenant", "Jobs", "Scenarios", "Makespan(s)", "Dispatched").
		AlignAll(table.Right).SetAlign(0, table.Left)
	for _, r := range reports {
		tb.AddRow(r.Tenant, fmt.Sprintf("%d", r.Jobs), fmt.Sprintf("%d", r.Scenarios),
			fmt.Sprintf("%.2f", float64(r.MakespanMS)/1000), fmt.Sprintf("%.0f", r.Dispatched))
	}
	fmt.Fprintln(stdout, tb.String())
	fmt.Fprintf(stdout, "Jain's fairness index over dispatch allocations: %.3f (n=%d, 1.0 = perfectly even)\n",
		jain, *tenants)
	return nil
}

// jainsIndex is (Σx)² / (n·Σx²), the classic fairness measure over
// per-tenant allocations. Degenerate all-zero input reads as 1 (nothing
// was allocated, nobody was treated unfairly).
func jainsIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// scrapeDispatched reads the per-tenant dispatched-scenario counters
// from one /metrics exposition. Tenants with no series yet read as 0.
func scrapeDispatched(ctx context.Context, base string) (map[string]float64, error) {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	series, err := fairness.ParseMetricsText(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	const prefix = `fairness_jobs_scenarios_dispatched_total{tenant="`
	for id, v := range series {
		if rest, ok := strings.CutPrefix(id, prefix); ok {
			if tenant, ok := strings.CutSuffix(rest, `"}`); ok {
				out[tenant] = v
			}
		}
	}
	return out, nil
}
