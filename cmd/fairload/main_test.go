package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	fairness "repro"
)

// capture swaps stdout/stderr for one generator run.
func capture(t *testing.T, args []string) (string, string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &out, &errOut
	defer func() { stdout, stderr = oldOut, oldErr }()
	err := run(args)
	return out.String(), errOut.String(), err
}

// startJobServer boots the same /v1/jobs + /metrics stack a fairnessd
// -jobs daemon serves, on an in-process engine.
func startJobServer(t *testing.T) *httptest.Server {
	t.Helper()
	metrics := fairness.NewMetricsRegistry()
	mgr, err := fairness.NewJobManager(fairness.JobConfig{
		Runner:  fairness.JobLocalRunner(fairness.SweepOptions{Metrics: metrics}, 1),
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	fairness.WithJobServer(mux, mgr)
	mux.Handle("GET /metrics", fairness.MetricsHandler(metrics))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestJainsIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{10, 10, 10, 10}, 1},
		{[]float64{40, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 1},
		{[]float64{1, 3}, 0.8},
	}
	for _, c := range cases {
		if got := jainsIndex(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("jainsIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestLoadGeneratorEndToEnd(t *testing.T) {
	srv := startJobServer(t)
	out, _, err := capture(t, []string{
		"-server", srv.URL, "-tenants", "2", "-jobs", "2",
		"-blocks", "120", "-trials", "8", "-poll", "5ms", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad -json report: %v\n%s", err, out)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant count: %+v", rep)
	}
	for _, tr := range rep.Tenants {
		if tr.Jobs != 2 || tr.Scenarios == 0 || tr.MakespanMS <= 0 {
			t.Errorf("tenant report: %+v", tr)
		}
	}
	if rep.JainsIndex <= 0 || rep.JainsIndex > 1 {
		t.Errorf("Jain's index out of range: %v", rep.JainsIndex)
	}
}

func TestLoadGeneratorTableOutput(t *testing.T) {
	srv := startJobServer(t)
	out, _, err := capture(t, []string{
		"-server", srv.URL, "-tenants", "2", "-jobs", "1",
		"-blocks", "120", "-trials", "8", "-poll", "5ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tenant", "Makespan", "Jain's fairness index"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadGeneratorRejectsBadFlags(t *testing.T) {
	if _, _, err := capture(t, []string{"-tenants", "0"}); err == nil {
		t.Error("zero tenants should fail")
	}
	if _, _, err := capture(t, []string{"-server", "127.0.0.1:1", "-timeout", "2s"}); err == nil {
		t.Error("unreachable server should fail")
	}
}
