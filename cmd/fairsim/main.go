// Command fairsim regenerates the paper's tables and figures.
//
// Usage:
//
//	fairsim list
//	fairsim run <experiment|all> [flags]
//
// Flags for run:
//
//	-trials N   override the trial count
//	-blocks N   override the horizon in blocks/epochs
//	-seed S     base RNG seed (default 1)
//	-quick      reduced sizes (what the test suite uses)
//	-ascii      print ASCII charts to stdout
//	-out DIR    write SVG charts into DIR
//
// Examples:
//
//	fairsim run fig2 -ascii
//	fairsim run table1 -quick
//	fairsim run all -quick -out charts/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	fairness "repro"
	"repro/internal/experiments"
	"repro/internal/table"
)

// stdout is swapped by tests to capture output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, s := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", s.ID, s.Title)
		}
		return nil
	case "run":
		return runCmd(args[1:])
	case "verdicts":
		return verdictsCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// verdictsCmd prints the qualitative fairness table for every protocol in
// the library at the paper's canonical setting.
func verdictsCmd(args []string) error {
	fs := flag.NewFlagSet("verdicts", flag.ContinueOnError)
	trials := fs.Int("trials", 800, "trials per protocol")
	blocks := fs.Int("blocks", 4000, "horizon in blocks/epochs")
	share := fs.Float64("a", 0.2, "miner A's initial share")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	protos := []fairness.Protocol{
		fairness.NewPoW(0.01),
		fairness.NewMLPoS(0.01),
		fairness.NewSLPoS(0.01),
		fairness.NewFSLPoS(0.01),
		fairness.NewCPoS(0.01, 0.1, 32),
		fairness.NewNEO(0.01),
		fairness.NewAlgorand(0.1),
		fairness.NewEOS(0.01, 0.1),
		fairness.NewHybrid(0.01, 0.5),
	}
	tb := table.New("Protocol", "E[lambda]", "Expectational", "Unfair prob", "Robust").
		AlignAll(table.Right).SetAlign(0, table.Left)
	for _, p := range protos {
		v, err := fairness.Evaluate(p, fairness.TwoMiner(*share), fairness.EvalConfig{
			Trials: *trials, Blocks: *blocks, Seed: *seed,
		})
		if err != nil {
			return err
		}
		tb.AddRow(v.Protocol, fmt.Sprintf("%.4f", v.MeanLambda), v.ExpectationalFair,
			fmt.Sprintf("%.3f", v.UnfairProbability), v.RobustFair)
	}
	fmt.Fprintf(stdout, "Fairness verdicts at a=%.2f over %d blocks (%d trials):\n\n%s\n",
		*share, *blocks, *trials, tb.String())
	fmt.Fprintf(stdout, "paper ranking: %v\n", fairness.Ranking())
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	trials := fs.Int("trials", 0, "override trial count")
	blocks := fs.Int("blocks", 0, "override horizon")
	seed := fs.Uint64("seed", 1, "base RNG seed")
	quick := fs.Bool("quick", false, "reduced sizes")
	ascii := fs.Bool("ascii", false, "print ASCII charts")
	outDir := fs.String("out", "", "write SVG charts into this directory")
	workers := fs.Int("workers", 0, "Monte-Carlo worker cap (0 = all cores)")
	if len(args) == 0 {
		return fmt.Errorf("run: missing experiment id (try `fairsim list`)")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg := experiments.Config{
		Trials: *trials, Blocks: *blocks, Seed: *seed, Quick: *quick, Workers: *workers,
	}
	var specs []experiments.Spec
	if id == "all" {
		specs = experiments.All()
	} else {
		s, err := experiments.Get(id)
		if err != nil {
			return err
		}
		specs = []experiments.Spec{s}
	}
	for _, s := range specs {
		fmt.Fprintf(stdout, "=== %s — %s ===\n\n", s.ID, s.Title)
		rep, err := s.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Fprintln(stdout, rep.Text)
		if *ascii {
			for _, c := range rep.Charts {
				fmt.Fprintln(stdout, c.ASCII(72, 18))
			}
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			for i, c := range rep.Charts {
				name := fmt.Sprintf("%s-%d.svg", s.ID, i+1)
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, []byte(c.SVG(720, 420)), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, strings.TrimLeft(`
fairsim — reproduce "Do the Rich Get Richer? Fairness Analysis for
Blockchain Incentives" (SIGMOD 2021)

commands:
  list                 list available experiments
  run <id|all> [flags] run one experiment (or all)

run flags:
  -trials N  -blocks N  -seed S  -quick  -ascii  -out DIR  -workers N
`, "\n"))
}
