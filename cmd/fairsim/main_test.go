package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects the CLI's stdout writer for one test.
func capture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	t.Cleanup(func() { stdout = old })
	return &buf
}

func TestListCommand(t *testing.T) {
	buf := capture(t)
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig1", "fig2", "table1", "realsys", "pooling", "hybrid"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunFig1(t *testing.T) {
	buf := capture(t)
	if err := run([]string{"run", "fig1", "-quick", "-ascii"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fixed point") {
		t.Errorf("fig1 output missing analysis:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("ASCII chart missing")
	}
}

func TestRunWritesSVG(t *testing.T) {
	capture(t)
	dir := t.TempDir()
	if err := run([]string{"run", "fig1", "-quick", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1-1.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG file malformed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	capture(t)
	if err := run([]string{"run", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunMissingID(t *testing.T) {
	capture(t)
	if err := run([]string{"run"}); err == nil {
		t.Error("missing id should error")
	}
}

func TestUnknownCommand(t *testing.T) {
	capture(t)
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run(nil); err == nil {
		t.Error("no command should error")
	}
}

func TestHelp(t *testing.T) {
	capture(t)
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help errored: %v", err)
	}
}

func TestVerdictsCommand(t *testing.T) {
	buf := capture(t)
	if err := run([]string{"verdicts", "-trials", "60", "-blocks", "400"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, proto := range []string{"PoW", "ML-PoS", "SL-PoS", "FSL-PoS", "C-PoS", "NEO", "Algorand", "EOS", "Hybrid"} {
		if !strings.Contains(out, proto) {
			t.Errorf("verdicts missing %q", proto)
		}
	}
	if !strings.Contains(out, "paper ranking") {
		t.Error("ranking missing")
	}
}
