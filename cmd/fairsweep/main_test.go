package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates testdata/arena_golden.json in place.
var updateGolden = flag.Bool("update-golden", false, "rewrite the arena golden file")

// arenaSmokeGrid is the CI attack-smoke arena grid: the same invocation
// .github/workflows/ci.yml diffs against the committed golden, so keep
// the two in sync.
var arenaSmokeGrid = []string{
	"-protocols", "pow,mlpos",
	"-stake", "0.2,0.4",
	"-miners", "5", "-w", "0.01",
	"-trials", "25", "-blocks", "600", "-seed", "5",
	"-json",
}

// capture redirects the CLI's stdout writer for one test.
func capture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	t.Cleanup(func() { stdout = old })
	return &buf
}

// grid24 is the acceptance grid: 4 protocols × 3 stakes × 2 rewards = 24
// scenarios at a test-friendly scale.
var grid24 = []string{
	"-protocols", "pow,mlpos,slpos,cpos",
	"-stake", "0.1,0.2,0.3",
	"-w", "0.005,0.01",
	"-trials", "20", "-blocks", "150", "-seed", "13",
}

func TestExpandCommand(t *testing.T) {
	buf := capture(t)
	if err := run(append([]string{"expand"}, grid24...)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "expanded 24 scenarios") {
		t.Errorf("expand output missing count:\n%s", out)
	}
	for _, want := range []string{`"hash"`, `"protocol": "pow"`, `"protocol": "cpos"`, `"seed"`} {
		if !strings.Contains(out, want) {
			t.Errorf("expand output missing %q", want)
		}
	}
	// Expansion is byte-deterministic.
	buf2 := capture(t)
	if err := run(append([]string{"expand"}, grid24...)); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("expand output not deterministic")
	}
}

// TestRun24ScenarioGridDeterministicWithCache is the PR's acceptance
// check: a ≥24-scenario sweep completes, its fairness output is
// deterministic for a fixed seed, cache-hit stats are reported, and a
// repeated run against the cache recomputes zero scenarios.
func TestRun24ScenarioGridDeterministicWithCache(t *testing.T) {
	args := append([]string{"run"}, grid24...)
	args = append(args, "-cache", "64", "-repeat", "2")

	buf := capture(t)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// The fairness table precedes the timing summaries and must be
	// deterministic across invocations.
	table := out[:strings.Index(out, "pass 1:")]
	if !strings.Contains(table, "slpos/w=0.01/a=0.3") {
		t.Errorf("table missing scenario rows:\n%s", table)
	}
	if got := strings.Count(table, "\n"); got < 24 {
		t.Errorf("table has %d lines, want >= 24 scenario rows", got)
	}
	// Pass 1 computes all 24, pass 2 recomputes zero.
	if !strings.Contains(out, "pass 1: 24 scenarios: 24 computed, 0 cache hits") {
		t.Errorf("cold pass stats missing:\n%s", out)
	}
	if !strings.Contains(out, "pass 2: 24 scenarios: 0 computed, 24 cache hits, 0 trials") {
		t.Errorf("warm pass should recompute zero scenarios:\n%s", out)
	}

	buf2 := capture(t)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	out2 := buf2.String()
	table2 := out2[:strings.Index(out2, "pass 1:")]
	if table != table2 {
		t.Errorf("fairness table not deterministic across runs:\n--- first\n%s\n--- second\n%s", table, table2)
	}
}

func TestRunPaperShapeOnGrid(t *testing.T) {
	// The sweep's verdicts carry the paper's ordering: at a=0.2 SL-PoS is
	// catastrophically unfair while PoW at the same scale is the fairest
	// column. Use the JSON output to assert on structured values.
	buf := capture(t)
	args := []string{"run", "-protocols", "pow,slpos", "-stake", "0.2", "-w", "0.01",
		"-trials", "60", "-blocks", "800", "-seed", "3", "-json"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Outcomes []struct {
			Spec    struct{ Protocol string }
			Verdict struct{ UnfairProbability float64 }
		}
	}
	data := buf.String()
	data = data[:strings.LastIndex(data, "}")+1]
	if err := json.Unmarshal([]byte(data), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	unfair := map[string]float64{}
	for _, o := range rep.Outcomes {
		unfair[o.Spec.Protocol] = o.Verdict.UnfairProbability
	}
	if !(unfair["slpos"] > unfair["pow"]) {
		t.Errorf("SL-PoS unfair %v should exceed PoW %v", unfair["slpos"], unfair["pow"])
	}
	if unfair["slpos"] < 0.8 {
		t.Errorf("SL-PoS unfair = %v, want ~1", unfair["slpos"])
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	capture(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	args := []string{"run", "-protocols", "pow", "-stake", "0.2", "-w", "0.01",
		"-trials", "10", "-blocks", "100", "-out", out}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Outcomes []json.RawMessage `json:"outcomes"`
		Stats    json.RawMessage   `json:"stats"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(rep.Outcomes) != 1 || rep.Stats == nil {
		t.Errorf("report shape: %s", data)
	}
}

func TestSpecFileGridAndList(t *testing.T) {
	dir := t.TempDir()
	gridFile := filepath.Join(dir, "grid.json")
	gridJSON := `{"base":{"blocks":100,"trials":10},"protocols":["pow","mlpos"],"stake":[0.2,0.3]}`
	if err := os.WriteFile(gridFile, []byte(gridJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := capture(t)
	if err := run([]string{"expand", "-spec", gridFile}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expanded 4 scenarios") {
		t.Errorf("grid file expansion:\n%s", buf.String())
	}

	listFile := filepath.Join(dir, "list.json")
	listJSON := `[{"protocol":"pow","blocks":100,"trials":10},{"protocol":"slpos","blocks":100,"trials":10}]`
	if err := os.WriteFile(listFile, []byte(listJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	buf2 := capture(t)
	if err := run([]string{"run", "-spec", listFile}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "2 scenarios") {
		t.Errorf("list file run:\n%s", buf2.String())
	}

	// Bad spec files fail loudly.
	badFile := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badFile, []byte(`{"base":{},"protocls":["pow"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	capture(t)
	if err := run([]string{"expand", "-spec", badFile}); err == nil {
		t.Error("typo axis in grid file should error")
	}
}

func TestBenchCommand(t *testing.T) {
	buf := capture(t)
	args := []string{"bench", "-protocols", "pow,mlpos", "-stake", "0.2", "-w", "0.01",
		"-trials", "10", "-blocks", "100"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cold: 2 scenarios: 2 computed") {
		t.Errorf("bench cold pass:\n%s", out)
	}
	if !strings.Contains(out, "warm: 2 scenarios: 0 computed, 2 cache hits") {
		t.Errorf("bench warm pass:\n%s", out)
	}
	if !strings.Contains(out, "scenarios/s") {
		t.Error("bench missing throughput")
	}
}

func TestBadFlagsAndCommands(t *testing.T) {
	capture(t)
	if err := run(nil); err == nil {
		t.Error("no command should error")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"run", "-w", "abc"}); err == nil {
		t.Error("bad float axis should error")
	}
	if err := run([]string{"run", "-miners", "x"}); err == nil {
		t.Error("bad int axis should error")
	}
	if err := run([]string{"run", "-protocols", ""}); err == nil {
		t.Error("empty scenario list should error")
	}
	if err := run([]string{"run", "-spec", "/nonexistent/file.json"}); err == nil {
		t.Error("missing spec file should error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help errored: %v", err)
	}
}

// captureErr redirects the CLI's stderr writer for one test.
func captureErr(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := stderr
	stderr = &buf
	t.Cleanup(func() { stderr = old })
	return &buf
}

func TestRunDiskCacheSurvivesInvocations(t *testing.T) {
	// Two separate CLI invocations against the same -cache-dir stand in
	// for two processes: the second recomputes nothing.
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"run", "-protocols", "pow,mlpos", "-stake", "0.2,0.3",
		"-trials", "15", "-blocks", "120", "-seed", "21", "-cache-dir", dir}
	buf := capture(t)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pass 1: 4 scenarios: 4 computed, 0 cache hits") {
		t.Fatalf("first invocation not cold:\n%s", buf.String())
	}
	buf2 := capture(t)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "pass 1: 4 scenarios: 0 computed, 4 cache hits, 0 trials") {
		t.Errorf("second invocation should be all disk hits:\n%s", buf2.String())
	}
}

func TestRunTheoryBackend(t *testing.T) {
	buf := capture(t)
	args := []string{"run", "-backend", "theory", "-protocols", "pow,mlpos,cpos",
		"-stake", "0.2", "-w", "0.01", "-blocks", "5000", "-trials", "1", "-json"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"backend": "theory"`) {
		t.Errorf("missing backend marker:\n%s", out)
	}
	if !strings.Contains(out, `"trials_run": 0`) {
		t.Errorf("theory backend should run zero trials:\n%s", out)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	capture(t)
	if err := run([]string{"run", "-backend", "quantum"}); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestStrategyFlagExpandsPerCandidate(t *testing.T) {
	// -strategy sweeps the adversary axis: one grid expansion per entry,
	// concatenated.
	buf := capture(t)
	args := []string{"expand", "-protocols", "pow", "-stake", "0.3,0.4", "-w", "0.01",
		"-miners", "4", "-trials", "10", "-blocks", "100",
		"-strategy", "selfish;selfish-delay:g=0.5,d=3"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "expanded 4 scenarios") {
		t.Errorf("want 2 stakes x 2 strategies = 4 scenarios:\n%s", out)
	}
	for _, want := range []string{`"strategy": "selfish"`, `"strategy": "selfish-delay"`, `"delay": 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("expansion missing %q:\n%s", want, out)
		}
	}
}

func TestSelfishFlagIsStrategySynonym(t *testing.T) {
	// Bare -selfish N must expand to exactly what -strategy selfish does:
	// same cells, same hashes.
	common := []string{"-protocols", "pow", "-stake", "0.4", "-miners", "4",
		"-trials", "10", "-blocks", "100", "-seed", "7"}
	buf := capture(t)
	if err := run(append([]string{"expand", "-selfish", "0"}, common...)); err != nil {
		t.Fatal(err)
	}
	old := buf.String()
	buf2 := capture(t)
	if err := run(append([]string{"expand", "-strategy", "selfish"}, common...)); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != old {
		t.Errorf("-selfish 0 and -strategy selfish diverge:\n--- selfish\n%s\n--- strategy\n%s", old, buf2.String())
	}
}

func TestStrategyFlagErrors(t *testing.T) {
	capture(t)
	if err := run([]string{"expand", "-strategy", "petty-compliant"}); err == nil {
		t.Error("unknown strategy should error")
	} else if !strings.Contains(err.Error(), "selfish") {
		t.Errorf("unknown-strategy error should list registered strategies, got: %v", err)
	}
	if err := run([]string{"expand", "-gamma", "0.5"}); err == nil {
		t.Error("-gamma without -strategy/-selfish should error")
	}
}

func TestArenaCommandGolden(t *testing.T) {
	// The arena smoke grid CI diffs against the committed golden: the
	// equilibrium report must be bit-identical run to run. Regenerate with
	//   go test ./cmd/fairsweep -run TestArenaCommandGolden -update-golden
	buf := capture(t)
	if err := run(append([]string{"arena"}, arenaSmokeGrid...)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	start := strings.Index(out, "[")
	if start < 0 {
		t.Fatalf("no JSON payload in output:\n%s", out)
	}
	got := out[start:]
	golden := filepath.Join("testdata", "arena_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("arena report drifted from testdata/arena_golden.json (rerun with -update-golden if intended)\n--- got\n%s\n--- want\n%s", got, want)
	}
	// Sanity on the content, not just the bytes: the 40% PoW miner
	// deviates, the 20% one and the PoS cells stay honest.
	var rows []struct {
		Name        string `json:"name"`
		Equilibrium struct {
			Deviators []int `json:"deviators"`
			Converged bool  `json:"converged"`
		} `json:"equilibrium"`
	}
	if err := json.Unmarshal([]byte(got), &rows); err != nil {
		t.Fatalf("bad arena JSON: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.Equilibrium.Converged {
			t.Errorf("%s: dynamics did not converge", r.Name)
		}
		wantDeviators := 0
		if strings.HasPrefix(r.Name, "pow") && strings.Contains(r.Name, "a=0.4") {
			wantDeviators = 1
		}
		if len(r.Equilibrium.Deviators) != wantDeviators {
			t.Errorf("%s: deviators = %v, want %d", r.Name, r.Equilibrium.Deviators, wantDeviators)
		}
	}
}

func TestArenaRejectsAdversaryFlags(t *testing.T) {
	capture(t)
	for _, args := range [][]string{
		{"arena", "-strategy", "selfish"},
		{"arena", "-selfish", "0"},
		{"arena", "-gamma", "0.5"},
		{"arena", "-fork-rate", "0.1"},
		{"arena", "-withhold", "100"},
	} {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), "does not apply to arena") {
			t.Errorf("run(%v) = %v, want arena-conflict error", args, err)
		}
	}
}

func TestArenaTableOutput(t *testing.T) {
	buf := capture(t)
	args := []string{"arena", "-protocols", "pow", "-stake", "0.4", "-miners", "5",
		"-trials", "20", "-blocks", "400", "-seed", "5"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	// The 40% miner adopts one of the race strategies; selfish and
	// selfish-delay at zero parameters are the same classic attack, so
	// either may win the sampled comparison.
	out := buf.String()
	for _, want := range []string{"Equilibrium", "@0", "scenarios"} {
		if !strings.Contains(out, want) {
			t.Errorf("arena table missing %q:\n%s", want, out)
		}
	}
}

func TestRunNDJSONStream(t *testing.T) {
	buf := capture(t)
	errBuf := captureErr(t)
	args := []string{"run", "-protocols", "pow,mlpos", "-stake", "0.2,0.3",
		"-trials", "10", "-blocks", "100", "-seed", "2", "-ndjson"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("streamed %d NDJSON lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var o struct {
			Hash    string          `json:"hash"`
			Verdict json.RawMessage `json:"verdict"`
		}
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if o.Hash == "" || o.Verdict == nil {
			t.Errorf("incomplete outcome line: %s", line)
		}
	}
	if !strings.Contains(errBuf.String(), "pass 1: 4 scenarios") {
		t.Errorf("summary should go to stderr in -ndjson mode:\n%s", errBuf.String())
	}
}
