// Command fairsweep expands and runs declarative fairness-scenario
// sweeps: the what-if engine over the paper's protocol space.
//
// Usage:
//
//	fairsweep expand [flags]   expand the grid, print the scenario list as JSON
//	fairsweep run [flags]      run the sweep, print the fairness report
//	fairsweep arena [flags]    best-response equilibrium sweep over the grid
//	fairsweep bench [flags]    run cold + warm cache passes, print throughput
//	fairsweep conform [flags]  run the cross-backend conformance corpus
//
// Grid flags (shared by expand/run/arena/bench):
//
//	-spec FILE      JSON grid {"base":{...},"protocols":[...],"stake":[...]}
//	                or scenario array [{...}, ...]; overrides the axis flags
//	-protocols CSV  protocol axis (default pow,mlpos,slpos,cpos)
//	-w CSV          block-reward axis (default 0.01)
//	-stake CSV      tracked-miner share axis (default 0.1,0.2,0.3,0.4)
//	-miners CSV     miner-count axis (default 2)
//	-withhold CSV   reward-withholding period axis (default none)
//	-strategy LIST  adversary strategy axis: semicolon-separated
//	                name:key=val,... entries over the registered strategies
//	                (honest, selfish, selfish-delay, withhold); one grid
//	                expansion per entry
//	-selfish N      deviating miner index for -strategy; alone it is the
//	                deprecated synonym for "-strategy selfish" on miner N
//	-gamma CSV      deprecated synonym: network-advantage axis over the
//	                -strategy/-selfish adversary
//	-fork-rate CSV  network fork-rate axis (pow only; 0 = honest cell)
//	-blocks N       horizon in blocks/epochs (default 5000)
//	-trials N       Monte-Carlo trials per scenario (default 1000)
//	-checkpoints N  record λ at N linear checkpoints (default: final only)
//	-seed S         sweep base seed; per-scenario seeds derive from it
//	                (grids only — explicit scenario arrays keep their own
//	                seeds, exactly as fairness.Sweep would)
//
// Run flags:
//
//	-workers N     scenario-level parallelism (0 = all cores)
//	-cache N       LRU result-cache capacity (0 = no cache)
//	-cache-dir DIR disk result cache (survives restarts; overrides -cache)
//	-cache-max-bytes N  size-cap the disk cache: least-recently-used
//	               entries are evicted once it exceeds N bytes
//	-backend NAME  evaluator backend: montecarlo (default), theory,
//	               chainsim, arena
//	-adaptive      early stopping: -trials becomes a budget, runs halt once
//	               the verdict is resolved (montecarlo only); tuned with
//	               -stop-confidence, -stop-min-trials, -stop-batch
//	-repeat N      run the sweep N times against the shared cache
//	-trace FILE    write NDJSON trace events — sweep_start, one sweep_eval
//	               per unique scenario, sweep_done — to FILE ("-" = stderr)
//	-json          print the report as JSON instead of a table
//	-ndjson        stream outcomes as NDJSON lines as they complete
//	-out FILE      also write the JSON report to FILE
//
// Arena flags (plus the grid and cache/worker flags; the adversary flags
// -strategy/-selfish/-gamma/-fork-rate/-withhold do not apply — the
// arena assigns strategies itself):
//
//	-candidates LIST  strategy menu, semicolon-separated name:key=val,...
//	                  entries (default: the protocol's registered set)
//	-max-rounds N     best-response round-robin bound (0 = default)
//	-json             print the stable JSON report (golden-diff friendly)
//	-out FILE         also write the JSON report to FILE
//
// Sweeps run through the public fairness.Engine and honour Ctrl-C: an
// interrupted sweep prints the partial report it finished and exits
// non-zero.
//
// Examples:
//
//	fairsweep expand -protocols mlpos -w 0.001,0.01,0.1 -stake 0.2
//	fairsweep run -trials 300 -blocks 1500 -cache 64 -repeat 2
//	fairsweep run -cache-dir ~/.cache/fairsweep -trials 300 -blocks 1500
//	fairsweep run -backend theory -protocols pow,mlpos,cpos
//	fairsweep run -protocols pow -stake 0.4 -strategy 'selfish;selfish-delay:d=3'
//	fairsweep run -protocols pow -stake 0.35,0.4,0.45 -selfish 0 -gamma 0,0.5
//	fairsweep run -protocols pow -stake 0.4 -fork-rate 0,0.4,0.8
//	fairsweep run -adaptive -trials 2000 -blocks 1500 -protocols pow
//	fairsweep arena -protocols pow -stake 0.2,0.4 -trials 50 -blocks 1500
//	fairsweep bench -protocols pow,mlpos -trials 100 -blocks 500
//	fairsweep conform
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	fairness "repro"
	"repro/internal/conformance"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
	"repro/internal/table"
)

// stdout is swapped by tests to capture output; stderr carries summary
// lines in -ndjson mode so stdout stays machine-parseable.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep:", err)
		os.Exit(1)
	}
}

// signalContext returns a context cancelled by SIGINT/SIGTERM, so an
// interrupted sweep stops within one scenario and reports what finished.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// traceWriter resolves the -trace flag: "-" streams events to stderr,
// anything else creates (or truncates) the named NDJSON file.
func traceWriter(path string) (io.Writer, func(), error) {
	if path == "-" {
		return stderr, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// cacheFor resolves the -cache/-cache-dir/-cache-max-bytes flags into a
// CacheStore (nil means uncached).
func cacheFor(capacity int, dir string, maxBytes int64) (fairness.CacheStore, error) {
	if dir != "" {
		disk, err := fairness.NewDiskCache(dir)
		if err != nil {
			return nil, err
		}
		if maxBytes > 0 {
			disk.SetMaxBytes(maxBytes)
		}
		return disk, nil
	}
	if capacity > 0 {
		return fairness.NewSweepCache(capacity), nil
	}
	return nil, nil
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "expand":
		return expandCmd(args[1:])
	case "run":
		return runCmd(args[1:])
	case "arena":
		return arenaCmd(args[1:])
	case "bench":
		return benchCmd(args[1:])
	case "conform":
		return conformCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// gridFlags registers the shared scenario-grid flags on a flag set.
type gridFlags struct {
	spec        *string
	protocols   *string
	w           *string
	stake       *string
	miners      *string
	withhold    *string
	strategy    *string
	selfish     *int
	gamma       *string
	forkRate    *string
	blocks      *int
	trials      *int
	checkpoints *int
	seed        *uint64
}

func addGridFlags(fs *flag.FlagSet) *gridFlags {
	return &gridFlags{
		spec:        fs.String("spec", "", "JSON grid or scenario-array file"),
		protocols:   fs.String("protocols", "pow,mlpos,slpos,cpos", "protocol axis (CSV)"),
		w:           fs.String("w", "0.01", "block-reward axis (CSV)"),
		stake:       fs.String("stake", "0.1,0.2,0.3,0.4", "tracked-miner share axis (CSV)"),
		miners:      fs.String("miners", "2", "miner-count axis (CSV)"),
		withhold:    fs.String("withhold", "", "withholding-period axis (CSV)"),
		strategy:    fs.String("strategy", "", "adversary strategy axis: semicolon-separated name:key=val,... entries (e.g. 'honest;selfish:g=0.5;withhold:e=100')"),
		selfish:     fs.Int("selfish", -1, "deviating miner index (with -strategy); alone: deprecated synonym for -strategy selfish on miner N (-1 = off)"),
		gamma:       fs.String("gamma", "", "deprecated synonym: network-advantage axis over the -strategy/-selfish adversary (CSV)"),
		forkRate:    fs.String("fork-rate", "", "network fork-rate axis (CSV, pow only; 0 = honest cell)"),
		blocks:      fs.Int("blocks", 5000, "horizon in blocks/epochs"),
		trials:      fs.Int("trials", 1000, "Monte-Carlo trials per scenario"),
		checkpoints: fs.Int("checkpoints", 0, "record lambda at N linear checkpoints (0 = final only)"),
		seed:        fs.Uint64("seed", 1, "sweep base seed"),
	}
}

// adversaries resolves the -strategy/-selfish/-gamma flags into the
// adversary blocks to sweep: one grid expansion per entry. -strategy is
// the canonical spelling; -selfish N doubles as the deviating-miner
// index and, alone, as the deprecated synonym for "-strategy selfish";
// -gamma stays the grid's network-advantage axis over whichever
// adversary is selected.
func (g *gridFlags) adversaries() ([]*scenario.Adversary, error) {
	miner := 0
	if *g.selfish >= 0 {
		miner = *g.selfish
	}
	if *g.strategy != "" {
		cands, err := fairness.ParseStrategies(*g.strategy)
		if err != nil {
			return nil, fmt.Errorf("-strategy: %w", err)
		}
		advs := make([]*scenario.Adversary, len(cands))
		for i, c := range cands {
			advs[i] = &scenario.Adversary{
				Strategy: c.Strategy, Miner: miner,
				Gamma: c.Gamma, Delay: c.Delay, Every: c.Every,
			}
		}
		return advs, nil
	}
	if *g.selfish >= 0 {
		return []*scenario.Adversary{{Strategy: scenario.StrategySelfish, Miner: miner}}, nil
	}
	if *g.gamma != "" {
		return nil, fmt.Errorf("-gamma needs -strategy or -selfish")
	}
	return []*scenario.Adversary{nil}, nil
}

// specs resolves the flag set into a concrete scenario list: the
// concatenation, over the -strategy entries, of one grid expansion per
// adversary block (a plain honest grid when no adversary is asked for).
func (g *gridFlags) specs() ([]scenario.Spec, error) {
	if *g.spec != "" {
		data, err := os.ReadFile(*g.spec)
		if err != nil {
			return nil, err
		}
		// Explicit scenario arrays are taken verbatim — seeds and all —
		// so the CLI computes exactly what fairness.Sweep would for the
		// same document (-seed applies to grids only).
		return scenario.DecodeSpecsOrGrid(data, *g.seed)
	}

	protocols, err := splitStrings(*g.protocols)
	if err != nil {
		return nil, err
	}
	ws, err := splitFloats(*g.w)
	if err != nil {
		return nil, fmt.Errorf("-w: %w", err)
	}
	stakes, err := splitFloats(*g.stake)
	if err != nil {
		return nil, fmt.Errorf("-stake: %w", err)
	}
	miners, err := splitInts(*g.miners)
	if err != nil {
		return nil, fmt.Errorf("-miners: %w", err)
	}
	withhold, err := splitInts(*g.withhold)
	if err != nil {
		return nil, fmt.Errorf("-withhold: %w", err)
	}
	gammas, err := splitFloats(*g.gamma)
	if err != nil {
		return nil, fmt.Errorf("-gamma: %w", err)
	}
	forkRates, err := splitFloats(*g.forkRate)
	if err != nil {
		return nil, fmt.Errorf("-fork-rate: %w", err)
	}
	advs, err := g.adversaries()
	if err != nil {
		return nil, err
	}
	base := scenario.Spec{Blocks: *g.blocks, Trials: *g.trials}
	if *g.checkpoints > 0 {
		base.Checkpoints = montecarlo.LinearCheckpoints(*g.blocks, *g.checkpoints)
	}
	var specs []scenario.Spec
	for _, adv := range advs {
		b := base
		b.Adversary = adv
		grid := scenario.Grid{
			Base:      b,
			Protocols: protocols,
			W:         ws,
			Stake:     stakes,
			Miners:    miners,
			Withhold:  withhold,
			Gamma:     gammas,
			ForkRate:  forkRates,
			Seed:      *g.seed,
		}
		expanded, err := grid.Expand()
		if err != nil {
			return nil, err
		}
		specs = append(specs, expanded...)
	}
	return specs, nil
}

func expandCmd(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ContinueOnError)
	gf := addGridFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := gf.specs()
	if err != nil {
		return err
	}
	type hashed struct {
		scenario.Spec
		Hash string `json:"hash"`
	}
	out := make([]hashed, len(specs))
	for i, s := range specs {
		h, err := s.Hash()
		if err != nil {
			return err
		}
		out[i] = hashed{Spec: s.Normalized(), Hash: h}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", data)
	fmt.Fprintf(stdout, "expanded %d scenarios\n", len(specs))
	return nil
}

// adaptiveFlags are the early-stopping knobs shared by run and bench:
// -adaptive turns each scenario's trial count into a budget with early
// stopping on the montecarlo backend; the stop-* flags tune the rule.
type adaptiveFlags struct {
	adaptive   *bool
	confidence *float64
	minTrials  *int
	batch      *int
}

func addAdaptiveFlags(fs *flag.FlagSet) *adaptiveFlags {
	return &adaptiveFlags{
		adaptive:   fs.Bool("adaptive", false, "adaptive early stopping: treat -trials as a budget, stop once the verdict is resolved (montecarlo backend only)"),
		confidence: fs.Float64("stop-confidence", 0, "adaptive stopping error budget across all looks (0 = default)"),
		minTrials:  fs.Int("stop-min-trials", 0, "smallest trial prefix the stopping rule evaluates (0 = default)"),
		batch:      fs.Int("stop-batch", 0, "trial batch size / stopping granularity (0 = default)"),
	}
}

// apply resolves the flags against the backend selection: a nil ev is
// the default montecarlo backend, which -adaptive upgrades to the
// early-stopping variant; any other backend rejects the flag.
func (af *adaptiveFlags) apply(ev fairness.Evaluator, backend string) (fairness.Evaluator, error) {
	if !*af.adaptive {
		return ev, nil
	}
	if ev != nil {
		return nil, fmt.Errorf("-adaptive requires the montecarlo backend, got %q", backend)
	}
	return fairness.MonteCarloAdaptiveBackend(fairness.AdaptiveTrials{
		Confidence: *af.confidence,
		MinTrials:  *af.minTrials,
		Batch:      *af.batch,
	}), nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	gf := addGridFlags(fs)
	workers := fs.Int("workers", 0, "scenario-level parallelism (0 = all cores)")
	cacheCap := fs.Int("cache", 0, "LRU result-cache capacity (0 = no cache)")
	cacheDir := fs.String("cache-dir", "", "disk result-cache directory (overrides -cache)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	backend := fs.String("backend", "montecarlo", "evaluator backend: montecarlo, theory, chainsim, arena")
	af := addAdaptiveFlags(fs)
	repeat := fs.Int("repeat", 1, "run the sweep N times against the shared cache")
	traceFile := fs.String("trace", "", "write NDJSON trace events (sweep_start, sweep_eval, sweep_done) to FILE (\"-\" = stderr)")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	asNDJSON := fs.Bool("ndjson", false, "stream outcomes as NDJSON lines as they complete")
	outFile := fs.String("out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := gf.specs()
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("empty scenario list")
	}
	if *repeat < 1 {
		*repeat = 1
	}
	ev, err := fairness.BackendByName(*backend)
	if err != nil {
		return err
	}
	if ev, err = af.apply(ev, *backend); err != nil {
		return err
	}
	cache, err := cacheFor(*cacheCap, *cacheDir, *cacheMaxBytes)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()

	engOpts := []fairness.EngineOption{fairness.WithWorkers(*workers)}
	if *traceFile != "" {
		w, closeTrace, err := traceWriter(*traceFile)
		if err != nil {
			return err
		}
		defer closeTrace()
		engOpts = append(engOpts, fairness.WithTelemetry(nil, fairness.NewTracer(w)))
	}
	if cache != nil {
		engOpts = append(engOpts, fairness.WithCache(cache))
	}
	if ev != nil {
		engOpts = append(engOpts, fairness.WithBackend(ev))
	}
	enc := json.NewEncoder(stdout)
	if *asNDJSON {
		engOpts = append(engOpts, fairness.WithObserver(func(o fairness.SweepOutcome) {
			enc.Encode(o)
		}))
	}
	eng := fairness.NewEngine(engOpts...)

	var rep *fairness.SweepReport
	summaries := make([]string, 0, *repeat)
	for pass := 1; pass <= *repeat; pass++ {
		rep, err = eng.Sweep(ctx, specs)
		if err != nil {
			if rep != nil && rep.Partial {
				fmt.Fprintf(stderr, "sweep interrupted: %s\n", rep.Summary())
			}
			return err
		}
		summaries = append(summaries, fmt.Sprintf("pass %d: %s", pass, rep.Summary()))
	}
	switch {
	case *asNDJSON:
		// Outcome lines already streamed; keep stdout pure NDJSON.
		for _, s := range summaries {
			fmt.Fprintln(stderr, s)
		}
	case *asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		for _, s := range summaries {
			fmt.Fprintln(stdout, s)
		}
	default:
		fmt.Fprintln(stdout, rep.Table())
		for _, s := range summaries {
			fmt.Fprintln(stdout, s)
		}
	}
	if *outFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outFile)
	}
	return nil
}

func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	gf := addGridFlags(fs)
	workers := fs.Int("workers", 0, "scenario-level parallelism (0 = all cores)")
	cacheCap := fs.Int("cache", 0, "cache capacity for the warm pass (0 = fit the grid)")
	cacheDir := fs.String("cache-dir", "", "disk result-cache directory (overrides -cache)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	backend := fs.String("backend", "montecarlo", "evaluator backend: montecarlo, theory, chainsim, arena")
	af := addAdaptiveFlags(fs)
	traceFile := fs.String("trace", "", "write NDJSON trace events of both passes to FILE (\"-\" = stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := gf.specs()
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("empty scenario list")
	}
	capacity := *cacheCap
	if capacity <= 0 {
		capacity = len(specs)
	}
	ev, err := fairness.BackendByName(*backend)
	if err != nil {
		return err
	}
	if ev, err = af.apply(ev, *backend); err != nil {
		return err
	}
	cache, err := cacheFor(capacity, *cacheDir, *cacheMaxBytes)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	// A private registry meters both passes; the efficiency lines below
	// read it back through the same snapshot path /metrics would serve.
	metrics := fairness.NewMetricsRegistry()
	var tracer *fairness.Tracer
	if *traceFile != "" {
		w, closeTrace, err := traceWriter(*traceFile)
		if err != nil {
			return err
		}
		defer closeTrace()
		tracer = fairness.NewTracer(w)
	}
	engOpts := []fairness.EngineOption{
		fairness.WithWorkers(*workers),
		fairness.WithCache(cache),
		fairness.WithTelemetry(metrics, tracer),
	}
	if ev != nil {
		engOpts = append(engOpts, fairness.WithBackend(ev))
	}
	eng := fairness.NewEngine(engOpts...)
	cold, err := eng.Sweep(ctx, specs)
	if err != nil {
		return err
	}
	warm, err := eng.Sweep(ctx, specs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cold: %s\n", cold.Summary())
	fmt.Fprintf(stdout, "warm: %s\n", warm.Summary())
	if warm.Stats.WallMS > 0 && cold.Stats.WallMS > 0 {
		fmt.Fprintf(stdout, "warm/cold speedup: %.1fx\n", cold.Stats.WallMS/warm.Stats.WallMS)
	}
	// Registry-derived efficiency figures across both passes (the same
	// series a /metrics scrape of this process would report).
	snap := metrics.Snapshot()
	// The metric label is the resolved evaluator name, which differs
	// from the -backend flag when -adaptive upgrades it.
	label := fmt.Sprintf("{backend=%q}", eng.BackendName())
	scen := snap["fairness_sweep_scenarios_total"+label]
	hits := snap["fairness_sweep_cache_hits_total"+label]
	trials := snap["fairness_sweep_trials_total"+label]
	if scen > 0 {
		fmt.Fprintf(stdout, "cache hit ratio: %.3f (%d/%d scenarios)\n", hits/scen, int64(hits), int64(scen))
		fmt.Fprintf(stdout, "trials/scenario: %.1f\n", trials/scen)
	}
	return nil
}

// arenaRow is the stable per-scenario record arena prints: everything
// deterministic (no timing, no cache bookkeeping), so -json output can
// be diffed against a committed golden file in CI.
type arenaRow struct {
	Name         string                     `json:"name"`
	Hash         string                     `json:"hash"`
	Backend      string                     `json:"backend"`
	Share        float64                    `json:"share"`
	Verdict      fairness.Verdict           `json:"verdict"`
	Equitability float64                    `json:"equitability"`
	Equilibrium  *fairness.ArenaEquilibrium `json:"equilibrium"`
}

// arenaCmd runs best-response equilibrium sweeps: each scenario of the
// grid is an honest baseline game, the arena backend lets every miner
// adopt best responses from the strategy menu until play fixes, and the
// report shows equilibrium fairness next to the honest-baseline deltas.
func arenaCmd(args []string) error {
	fs := flag.NewFlagSet("arena", flag.ContinueOnError)
	gf := addGridFlags(fs)
	candidates := fs.String("candidates", "", "strategy menu: semicolon-separated name:key=val,... entries (default: the protocol's registered strategies)")
	maxRounds := fs.Int("max-rounds", 0, "best-response round-robin bound (0 = default)")
	workers := fs.Int("workers", 0, "scenario-level parallelism (0 = all cores)")
	cacheCap := fs.Int("cache", 0, "LRU result-cache capacity (0 = no cache)")
	cacheDir := fs.String("cache-dir", "", "disk result-cache directory (overrides -cache)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	asJSON := fs.Bool("json", false, "print the equilibrium report as JSON (stable: no timing fields)")
	outFile := fs.String("out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The arena assigns strategies itself; the adversary/treatment axes
	// would contradict that.
	for _, conflict := range []struct {
		flag string
		set  bool
	}{
		{"-strategy", *gf.strategy != ""},
		{"-selfish", *gf.selfish >= 0},
		{"-gamma", *gf.gamma != ""},
		{"-fork-rate", *gf.forkRate != ""},
		{"-withhold", *gf.withhold != ""},
	} {
		if conflict.set {
			return fmt.Errorf("%s does not apply to arena: the arena assigns strategies itself (use -candidates to shape the menu)", conflict.flag)
		}
	}
	specs, err := gf.specs()
	if err != nil {
		return err
	}
	cfg := fairness.ArenaConfig{MaxRounds: *maxRounds}
	if *candidates != "" {
		if cfg.Candidates, err = fairness.ParseStrategies(*candidates); err != nil {
			return fmt.Errorf("-candidates: %w", err)
		}
	}
	cache, err := cacheFor(*cacheCap, *cacheDir, *cacheMaxBytes)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	engOpts := []fairness.EngineOption{
		fairness.WithWorkers(*workers),
		fairness.WithBackend(fairness.ArenaBackend(cfg)),
	}
	if cache != nil {
		engOpts = append(engOpts, fairness.WithCache(cache))
	}
	eng := fairness.NewEngine(engOpts...)
	rep, err := eng.Sweep(ctx, specs)
	if err != nil {
		if rep != nil && rep.Partial {
			fmt.Fprintf(stderr, "arena sweep interrupted: %s\n", rep.Summary())
		}
		return err
	}
	rows := make([]arenaRow, len(rep.Outcomes))
	for i, o := range rep.Outcomes {
		rows[i] = arenaRow{
			Name: o.Name, Hash: o.Hash, Backend: o.Backend, Share: o.Share,
			Verdict: o.Verdict, Equitability: o.Equitability, Equilibrium: o.Arena,
		}
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if *asJSON {
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		fmt.Fprintln(stdout, arenaTable(rows))
		fmt.Fprintln(stdout, rep.Summary())
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Fprintf(stdout, "wrote %s\n", *outFile)
		}
	}
	return nil
}

// arenaTable renders the equilibrium report, one scenario per row.
func arenaTable(rows []arenaRow) string {
	tb := table.New("Scenario", "a", "Equilibrium", "Rnds", "Conv", "E[lambda]", "Delta", "Expect.", "Robust").
		AlignAll(table.Right).SetAlign(0, table.Left).SetAlign(2, table.Left)
	for _, r := range rows {
		profile, delta, rounds, conv := "?", 0.0, 0, "?"
		if eq := r.Equilibrium; eq != nil {
			profile = profileSummary(eq)
			rounds = eq.Rounds
			conv = "yes"
			if !eq.Converged {
				conv = "NO"
			}
			// The tracked miner is always miner 0 of the expanded grids.
			delta = eq.Delta(0)
		}
		tb.AddRow(r.Name, fmt.Sprintf("%.3f", r.Share), profile,
			fmt.Sprintf("%d", rounds), conv,
			fmt.Sprintf("%.4f", r.Verdict.MeanLambda), fmt.Sprintf("%+.4f", delta),
			r.Verdict.ExpectationalFair, r.Verdict.RobustFair)
	}
	return tb.String()
}

// profileSummary compresses an equilibrium profile into its deviations
// ("all-honest" when nobody deviates).
func profileSummary(eq *fairness.ArenaEquilibrium) string {
	if len(eq.Deviators) == 0 {
		return "all-honest"
	}
	parts := make([]string, len(eq.Deviators))
	for i, m := range eq.Deviators {
		parts[i] = fmt.Sprintf("%s@%d", eq.Profile[m], m)
	}
	return strings.Join(parts, " ")
}

// conformCmd runs the cross-backend conformance suite: the canonical
// honest + adversarial corpus on montecarlo and chainsim with
// statistical-parity and skew-direction assertions, plus the exact
// capability-error contract. Exits non-zero on any violation, so CI can
// gate on it directly.
func conformCmd(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the conformance report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	a, b := conformance.DefaultBackends()
	rep, err := conformance.Run(ctx, a, b, conformance.Corpus())
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		fmt.Fprint(stdout, rep.Summary())
	}
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("%d conformance failures", n)
	}
	return nil
}

func splitStrings(csv string) ([]string, error) {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out, nil
}

func splitFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func usage() {
	fmt.Fprint(os.Stderr, strings.TrimLeft(`
fairsweep — declarative fairness-scenario sweeps over the protocols of
"Do the Rich Get Richer? Fairness Analysis for Blockchain Incentives"

commands:
  expand [flags]   expand the grid, print the scenario list as JSON
  run [flags]      run the sweep, print the fairness report
  arena [flags]    best-response equilibrium sweep: every miner picks its
                   best strategy until play fixes, report equilibrium
                   fairness next to the honest baseline
  bench [flags]    run cold + warm cache passes, print throughput
  conform [flags]  run the cross-backend conformance corpus (montecarlo
                   vs chainsim parity, capability-error contract)

grid flags:
  -spec FILE  -protocols CSV  -w CSV  -stake CSV  -miners CSV  -withhold CSV
  -strategy LIST  -selfish N (deprecated alone)  -gamma CSV (deprecated)
  -fork-rate CSV  -blocks N  -trials N  -checkpoints N  -seed S

run flags:
  -workers N  -cache N  -cache-dir DIR  -cache-max-bytes N  -backend NAME
  -repeat N  -trace FILE  -json  -ndjson  -out FILE

arena flags:
  -candidates LIST  -max-rounds N  -workers N  -cache N  -cache-dir DIR
  -cache-max-bytes N  -json  -out FILE

conform flags:
  -json
`, "\n"))
}
