package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fairness "repro"
	"repro/internal/cluster"
	"repro/internal/sweep"
)

// startWorker boots one in-process worker node speaking the cluster
// protocol — the same handlers fairnessd mounts.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ws := cluster.NewWorkerServer(cluster.LocalRunner(sweep.Options{}))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "backend": "montecarlo", "cache": "none",
			"shards_in_flight": ws.InFlight(), "shards_done": ws.Done(),
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// capture swaps stdout/stderr for one command invocation.
func capture(t *testing.T, args []string) (string, string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	oldOut, oldErr := stdout, stderr
	stdout, stderr = &out, &errOut
	defer func() { stdout, stderr = oldOut, oldErr }()
	err := run(args)
	return out.String(), errOut.String(), err
}

// writeGrid drops a small grid spec into a temp file.
func writeGrid(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	grid := `{"seed":7,"base":{"blocks":120,"trials":12},"protocols":["pow","mlpos"],"stake":[0.2,0.4]}`
	if err := os.WriteFile(path, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAgainstTwoWorkersMatchesLocalSweep(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	spec := writeGrid(t)

	out, _, err := capture(t, []string{"run",
		"-workers", w1.URL + "," + w2.URL, "-json", spec})
	if err != nil {
		t.Fatal(err)
	}
	var rep sweep.Report
	decoded := json.NewDecoder(strings.NewReader(out))
	if err := decoded.Decode(&rep); err != nil {
		t.Fatalf("run -json output not a report: %v\n%s", err, out)
	}
	if rep.Stats.Scenarios != 4 || rep.Stats.Computed != 4 {
		t.Errorf("stats: %+v", rep.Stats)
	}
	if !strings.Contains(out, "across 2 static workers") {
		t.Errorf("summary missing worker count:\n%s", out)
	}
}

func TestRunNDJSONStreamsOutcomes(t *testing.T) {
	w := startWorker(t)
	out, errOut, err := capture(t, []string{"run", "-workers", w.URL, "-ndjson", writeGrid(t)})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	dec := json.NewDecoder(strings.NewReader(out))
	for dec.More() {
		var o sweep.Outcome
		if err := dec.Decode(&o); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if o.Hash == "" {
			t.Error("outcome line missing hash")
		}
		lines++
	}
	if lines != 4 {
		t.Errorf("streamed %d outcomes, want 4", lines)
	}
	if !strings.Contains(errOut, "4 scenarios") {
		t.Errorf("summary not on stderr: %q", errOut)
	}
}

func TestRunRequiresWorkersAndSpec(t *testing.T) {
	if _, _, err := capture(t, []string{"run", writeGrid(t)}); err == nil {
		t.Error("run without -workers or -listen should fail")
	}
	w := startWorker(t)
	if _, _, err := capture(t, []string{"run", "-workers", w.URL}); err == nil {
		t.Error("run without a spec should fail")
	}
}

func TestRunListenZeroWorkersCompletesAfterRegistration(t *testing.T) {
	// The acceptance path through the CLI: `run -listen` starts with an
	// EMPTY pool, a worker self-registers against the coordinator's
	// /v1/register endpoint mid-run, and the run completes.
	w := startWorker(t)
	spec := writeGrid(t)

	// Reserve an ephemeral port for the coordinator listener so
	// concurrent test runs never collide on a fixed address.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordAddr := probe.Addr().String()
	probe.Close()

	// Register the worker once the coordinator's listener answers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			body := strings.NewReader(`{"url":"` + w.URL + `","backend":"montecarlo"}`)
			resp, err := http.Post("http://"+coordAddr+"/v1/register", "application/json", body)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	out, errOut, err := capture(t, []string{"run",
		"-listen", coordAddr, "-progress", "-json", spec})
	<-done
	if err != nil {
		t.Fatalf("run -listen failed: %v\nstderr:\n%s", err, errOut)
	}
	var rep sweep.Report
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&rep); err != nil {
		t.Fatalf("run -json output not a report: %v\n%s", err, out)
	}
	if rep.Stats.Scenarios != 4 || rep.Stats.Computed != 4 {
		t.Errorf("stats: %+v", rep.Stats)
	}
	if !strings.Contains(errOut, "waiting for workers to register") {
		t.Errorf("stderr missing wait notice:\n%s", errOut)
	}
	if !strings.Contains(errOut, "progress:") {
		t.Errorf("stderr missing -progress lines:\n%s", errOut)
	}
}

func TestWatchRendersWorkerAndCoordinatorProgress(t *testing.T) {
	// A fake coordinator and a real worker: watch -once must render the
	// coordinator's shard table and the worker's counters.
	w := startWorker(t)
	coordMux := http.NewServeMux()
	coordMux.HandleFunc("GET /v1/progress", func(wr http.ResponseWriter, r *http.Request) {
		json.NewEncoder(wr).Encode(cluster.Progress{
			Total: 24, Delivered: 9, ShardsClaimed: 4, ShardsAcked: 2, Workers: 2,
			Shards: []cluster.ShardProgress{{
				ID: "abcdef0123456789", Worker: w.URL, Scenarios: 8,
				Streamed: 3, State: "streaming", AgeMS: 1500,
			}},
		})
	})
	coord := httptest.NewServer(coordMux)
	t.Cleanup(coord.Close)

	out, _, err := capture(t, []string{"watch",
		"-coordinator", coord.URL, "-workers", w.URL, "-once"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"9/24 delivered", "abcdef012345", "streaming", "worker " + w.URL, "scenarios/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

func TestWatchExitsWhenCoordinatorReportsDone(t *testing.T) {
	coordMux := http.NewServeMux()
	coordMux.HandleFunc("GET /v1/progress", func(wr http.ResponseWriter, r *http.Request) {
		json.NewEncoder(wr).Encode(cluster.Progress{Total: 4, Delivered: 4, Done: true})
	})
	coord := httptest.NewServer(coordMux)
	t.Cleanup(coord.Close)

	// No -once: the done snapshot itself must end the loop.
	out, _, err := capture(t, []string{"watch", "-coordinator", coord.URL, "-interval", "10ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "run complete") {
		t.Errorf("watch did not announce completion:\n%s", out)
	}
}

func TestWatchRequiresTarget(t *testing.T) {
	if _, _, err := capture(t, []string{"watch"}); err == nil {
		t.Error("watch without targets should fail")
	}
}

func TestStatusReportsWorkers(t *testing.T) {
	w := startWorker(t)
	out, _, err := capture(t, []string{"status", "-workers", w.URL + ",127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1/2 workers up") {
		t.Errorf("status output:\n%s", out)
	}
	if !strings.Contains(out, "DOWN") {
		t.Errorf("unreachable worker not marked down:\n%s", out)
	}

	// All workers down is an error exit for scripting.
	if _, _, err := capture(t, []string{"status", "-workers", "127.0.0.1:1"}); err == nil {
		t.Error("status with every worker down should fail")
	}
}

func TestExpandPrintsHashes(t *testing.T) {
	out, _, err := capture(t, []string{"expand", writeGrid(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"hash"`) || !strings.Contains(out, "expanded 4 scenarios") {
		t.Errorf("expand output:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, _, err := capture(t, []string{"frobnicate"}); err == nil {
		t.Error("unknown command should fail")
	}
}

// startJobServer boots an in-process multi-tenant job service — the
// same /v1/jobs stack fairnessd -jobs mounts — over an optional custom
// runner (nil = local sweeps).
func startJobServer(t *testing.T, runner fairness.JobSweepRunner) *httptest.Server {
	t.Helper()
	if runner == nil {
		runner = fairness.JobLocalRunner(sweep.Options{}, 0)
	}
	mgr, err := fairness.NewJobManager(fairness.JobConfig{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	fairness.WithJobServer(mux, mgr)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// normalizeOutcomes strips the legitimately run-dependent fields
// (timing, cache provenance) and re-marshals for bit-exact comparison.
func normalizeOutcomes(t *testing.T, outs []sweep.Outcome) string {
	t.Helper()
	c := make([]sweep.Outcome, len(outs))
	copy(c, outs)
	for i := range c {
		c[i].ElapsedMS = 0
		c[i].CacheHit = false
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSubmitWaitResultsMatchesLocalSweep(t *testing.T) {
	srv := startJobServer(t, nil)
	specFile := writeGrid(t)

	out, _, err := capture(t, []string{"submit", "-server", srv.URL,
		"-tenant", "acme", "-name", "cli-e2e", "-wait", "-poll", "20ms", specFile})
	if err != nil {
		t.Fatal(err)
	}
	var info fairness.JobInfo
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("submit output not a JobInfo: %v\n%s", err, out)
	}
	if info.State != fairness.JobStateDone || info.Tenant != "acme" || info.Scenarios != 4 {
		t.Fatalf("job info: %+v", info)
	}

	// results -ndjson: one outcome per line, same shape as fairsweep.
	out, errOut, err := capture(t, []string{"results", "-server", srv.URL, "-ndjson", info.ID})
	if err != nil {
		t.Fatal(err)
	}
	var got []sweep.Outcome
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var o sweep.Outcome
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		got = append(got, o)
	}
	if !strings.Contains(errOut, info.ID) {
		t.Errorf("summary line missing job id: %q", errOut)
	}
	specs, err := loadSpecs(specFile, 1)
	if err != nil {
		t.Fatal(err)
	}
	local, err := fairness.Sweep(specs, fairness.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := normalizeOutcomes(t, local.Outcomes); normalizeOutcomes(t, got) != want {
		t.Errorf("job results differ from local sweep:\n%s\n%s", normalizeOutcomes(t, got), want)
	}

	// jobs list shows the finished job.
	out, _, err = capture(t, []string{"jobs", "-server", srv.URL, "-tenant", "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, info.ID) || !strings.Contains(out, "done") {
		t.Errorf("jobs listing:\n%s", out)
	}
}

func TestCancelKeepsPartialResults(t *testing.T) {
	// A runner that completes one outcome, then blocks until cancelled —
	// deterministic mid-run state for the CLI to cancel.
	started := make(chan struct{})
	runner := func(ctx context.Context, specs []fairness.Scenario,
		gate fairness.ClusterDispatchGate, cache fairness.CacheStore) (*fairness.SweepReport, error) {
		rep, err := fairness.Sweep(specs[:1], fairness.SweepOptions{})
		if err != nil {
			return nil, err
		}
		rep.Partial = true
		close(started)
		<-ctx.Done()
		return rep, ctx.Err()
	}
	srv := startJobServer(t, runner)
	specFile := writeGrid(t)

	out, _, err := capture(t, []string{"submit", "-server", srv.URL, specFile})
	if err != nil {
		t.Fatal(err)
	}
	var info fairness.JobInfo
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatal(err)
	}
	<-started
	if out, _, err = capture(t, []string{"cancel", "-server", srv.URL, info.ID}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cancel requested") {
		t.Errorf("cancel output: %q", out)
	}
	client := fairness.NewJobClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := client.Wait(ctx, info.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != fairness.JobStateCancelled || !fin.Partial {
		t.Fatalf("after cancel: %+v", fin)
	}
	out, _, err = capture(t, []string{"results", "-server", srv.URL, "-json", info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"partial": true`) || !strings.Contains(out, `"hash"`) {
		t.Errorf("partial results:\n%s", out)
	}
}

func TestJobCommandErrors(t *testing.T) {
	srv := startJobServer(t, nil)
	if _, _, err := capture(t, []string{"results", "-server", srv.URL, "j-999999"}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("results for unknown job: %v", err)
	}
	if _, _, err := capture(t, []string{"cancel", "-server", srv.URL}); err == nil {
		t.Error("cancel without an id should fail")
	}
	if _, _, err := capture(t, []string{"submit", "-server", srv.URL}); err == nil {
		t.Error("submit without a spec should fail")
	}
}
