// Command fairctl is the cluster coordinator CLI: it takes the same
// declarative scenario grids fairsweep runs locally — including
// adversarial specs with adversary/network blocks and gamma/fork_rate
// axes, which ship over the shard protocol unchanged — and fans them
// out over a pool of fairnessd worker nodes (internal/cluster), merging
// the workers' streams into one report that is bit-identical — modulo
// timing/cache bookkeeping — to a single-process `fairsweep run` of the
// same spec.
//
// Usage:
//
//	fairctl run -workers host1:7447,host2:7447 [flags] spec.json
//	fairctl status -workers host1:7447,host2:7447
//	fairctl expand [flags] [spec.json]
//
// Run flags:
//
//	-workers CSV         fairnessd base URLs (required; host:port or URL)
//	-spec FILE           JSON grid or scenario array (or a positional file)
//	-backend NAME        backend every worker must run: montecarlo
//	                     (default), theory or chainsim — mismatched
//	                     workers fail the run
//	-cache-dir DIR       coordinator-side disk cache; point it at the
//	                     directory the workers share and warm work items
//	                     are never shipped at all
//	-cache-max-bytes N   size-cap the coordinator cache (LRU eviction)
//	-shard-size N        work items per shard (0 = auto)
//	-retries N           attempts per shard before the run fails (default 3)
//	-seed S              sweep base seed for grid specs
//	-json / -ndjson      report as JSON / stream outcomes as NDJSON
//	-out FILE            also write the JSON report to FILE
//
// Failure semantics: a worker that dies mid-shard just loses the shard —
// it re-enters the shared queue with exponential backoff and any live
// worker steals it; the merged report is unchanged. The run fails only
// when a shard exhausts its retry budget, every worker is lost, or a
// worker is misconfigured (wrong backend).
//
// Example session:
//
//	fairnessd -addr :7447 -cache-dir /shared/cache &
//	fairnessd -addr :7448 -cache-dir /shared/cache &
//	fairctl status -workers localhost:7447,localhost:7448
//	fairctl run -workers localhost:7447,localhost:7448 grid.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	fairness "repro"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/table"
)

// stdout/stderr are swapped by tests; stderr carries summaries in
// -ndjson mode so stdout stays machine-parseable.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "status":
		return statusCmd(args[1:])
	case "expand":
		return expandCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// signalContext cancels on SIGINT/SIGTERM so an interrupted distributed
// run reports what its workers finished.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// splitWorkers parses the -workers CSV into base URLs.
func splitWorkers(csv string) []string {
	var out []string
	for _, w := range strings.Split(csv, ",") {
		if u := cluster.NormalizeWorkerURL(w); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// loadSpecs reads a grid or scenario-array file — the same two formats
// fairsweep and fairnessd accept — into a validated scenario list.
func loadSpecs(path string, seed uint64) ([]fairness.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return scenario.DecodeSpecsOrGrid(data, seed)
}

// specPath resolves -spec against a positional file argument.
func specPath(specFlag string, fs *flag.FlagSet) (string, error) {
	path := specFlag
	if fs.NArg() > 0 {
		if path != "" {
			return "", fmt.Errorf("both -spec and a positional spec file given")
		}
		path = fs.Arg(0)
	}
	if path == "" {
		return "", fmt.Errorf("no spec: pass -spec FILE or a positional spec file")
	}
	return path, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workers := fs.String("workers", "", "fairnessd worker base URLs (CSV, required)")
	spec := fs.String("spec", "", "JSON grid or scenario-array file")
	backend := fs.String("backend", "montecarlo", "backend every worker must run: montecarlo, theory, chainsim")
	cacheDir := fs.String("cache-dir", "", "coordinator-side disk result cache (share the workers' dir for free warm starts)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	shardSize := fs.Int("shard-size", 0, "work items per shard (0 = auto)")
	retries := fs.Int("retries", 0, "attempts per shard before the run fails (0 = default 3)")
	seed := fs.Uint64("seed", 1, "sweep base seed for grid specs")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	asNDJSON := fs.Bool("ndjson", false, "stream outcomes as NDJSON lines as they complete")
	outFile := fs.String("out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := splitWorkers(*workers)
	if len(pool) == 0 {
		return fmt.Errorf("no workers: pass -workers host1:port,host2:port")
	}
	path, err := specPath(*spec, fs)
	if err != nil {
		return err
	}
	specs, err := loadSpecs(path, *seed)
	if err != nil {
		return err
	}
	// In cluster mode the evaluator never runs locally — it names the
	// backend the workers must match and the cache namespace.
	ev, err := fairness.BackendByName(*backend)
	if err != nil {
		return err
	}

	ctx, stop := signalContext()
	defer stop()

	engOpts := []fairness.EngineOption{fairness.WithCluster(fairness.ClusterOptions{
		Workers:     pool,
		ShardSize:   *shardSize,
		MaxAttempts: *retries,
	})}
	if *cacheDir != "" {
		disk, err := fairness.NewDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		if *cacheMaxBytes > 0 {
			disk.SetMaxBytes(*cacheMaxBytes)
		}
		engOpts = append(engOpts, fairness.WithCache(disk))
	}
	if ev != nil {
		engOpts = append(engOpts, fairness.WithBackend(ev))
	}
	enc := json.NewEncoder(stdout)
	if *asNDJSON {
		engOpts = append(engOpts, fairness.WithObserver(func(o fairness.SweepOutcome) {
			enc.Encode(o)
		}))
	}
	eng := fairness.NewEngine(engOpts...)

	rep, err := eng.Sweep(ctx, specs)
	if err != nil {
		if rep != nil && rep.Partial {
			fmt.Fprintf(stderr, "cluster run interrupted: %s\n", rep.Summary())
		}
		return err
	}
	summary := fmt.Sprintf("%s across %d workers", rep.Summary(), len(pool))
	switch {
	case *asNDJSON:
		fmt.Fprintln(stderr, summary)
	case *asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		fmt.Fprintln(stdout, summary)
	default:
		fmt.Fprintln(stdout, rep.Table())
		fmt.Fprintln(stdout, summary)
	}
	if *outFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outFile)
	}
	return nil
}

func statusCmd(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	workers := fs.String("workers", "", "fairnessd worker base URLs (CSV, required)")
	asJSON := fs.Bool("json", false, "print worker health as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := splitWorkers(*workers)
	if len(pool) == 0 {
		return fmt.Errorf("no workers: pass -workers host1:port,host2:port")
	}
	ctx, stop := signalContext()
	defer stop()
	health := fairness.ClusterStatus(ctx, pool)
	if *asJSON {
		data, err := json.MarshalIndent(health, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		return nil
	}
	tb := table.New("Worker", "Status", "Backend", "Cache", "In-flight", "Done", "Uptime(s)").
		AlignAll(table.Right).SetAlign(0, table.Left).SetAlign(1, table.Left)
	up := 0
	for _, h := range health {
		status := "ok"
		if !h.OK {
			status = "DOWN: " + h.Error
		} else {
			up++
		}
		tb.AddRow(h.URL, status, h.Backend, h.Cache,
			fmt.Sprintf("%d", h.ShardsInFlight), fmt.Sprintf("%d", h.ShardsDone),
			fmt.Sprintf("%.0f", float64(h.UptimeMS)/1000))
	}
	fmt.Fprintln(stdout, tb.String())
	fmt.Fprintf(stdout, "%d/%d workers up\n", up, len(health))
	if up == 0 {
		return fmt.Errorf("no workers up")
	}
	return nil
}

func expandCmd(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON grid or scenario-array file")
	seed := fs.Uint64("seed", 1, "sweep base seed for grid specs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := specPath(*spec, fs)
	if err != nil {
		return err
	}
	specs, err := loadSpecs(path, *seed)
	if err != nil {
		return err
	}
	type hashed struct {
		fairness.Scenario
		Hash string `json:"hash"`
	}
	out := make([]hashed, len(specs))
	for i, s := range specs {
		h, err := s.Hash()
		if err != nil {
			return err
		}
		out[i] = hashed{Scenario: s.Normalized(), Hash: h}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", data)
	fmt.Fprintf(stdout, "expanded %d scenarios\n", len(specs))
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, strings.TrimLeft(`
fairctl — coordinate fairness-scenario sweeps across fairnessd workers

commands:
  run -workers CSV [flags] spec.json     distribute the sweep, print the report
  status -workers CSV [-json]            probe every worker's /v1/healthz
  expand [-spec FILE|spec.json] [-seed]  expand the grid, print scenarios + hashes

run flags:
  -workers CSV  -spec FILE  -backend NAME  -cache-dir DIR  -cache-max-bytes N
  -shard-size N  -retries N  -seed S  -json  -ndjson  -out FILE
`, "\n"))
}
