// Command fairctl is the cluster coordinator CLI: it takes the same
// declarative scenario grids fairsweep runs locally — including
// adversarial specs with adversary/network blocks and gamma/fork_rate
// axes, which ship over the shard protocol unchanged — and fans them
// out over a pool of fairnessd worker nodes (internal/cluster), merging
// the workers' streams into one report that is bit-identical — modulo
// timing/cache bookkeeping — to a single-process `fairsweep run` of the
// same spec.
//
// The pool is self-organizing: `run -listen` starts a registration
// listener and workers announce THEMSELVES (`fairnessd -register`),
// heartbeat to stay in the pool, and deregister on shutdown — no
// hand-maintained worker list. A static `-workers` CSV is still
// accepted, alone or alongside `-listen`. Shard sizes adapt to each
// worker's measured scenarios/sec, and `watch` renders the live
// per-shard progress of a running sweep.
//
// Usage:
//
//	fairctl run -listen :7800 [flags] spec.json
//	fairctl run -workers host1:7447,host2:7447 [flags] spec.json
//	fairctl watch -coordinator http://host:7800 [-workers CSV]
//	fairctl status -workers host1:7447,host2:7447
//	fairctl top -url http://host:7447 [-interval D] [-once]
//	fairctl trace -server http://host:7447 [-sources CSV] JOB_ID|TRACE_ID
//	fairctl expand [flags] [spec.json]
//	fairctl submit -server http://host:7447 [-tenant T] [-name N] [-wait] spec.json
//	fairctl jobs -server http://host:7447 [-tenant T] [-state S]
//	fairctl cancel -server http://host:7447 JOB_ID
//	fairctl results -server http://host:7447 [-json|-ndjson] JOB_ID
//
// The job-service commands talk to a fairnessd started with -jobs: jobs
// from many tenants share the daemon's engine (or, with -jobs-cluster,
// its registered worker pool) under weighted fair-share scheduling with
// per-tenant quotas and result retention. `results -ndjson` emits the
// same outcome-per-line shape as `fairsweep run -ndjson`, so a job's
// merged report diffs clean against a local sweep of the same spec
// after dropping the timing/cache fields.
//
// Run flags:
//
//	-listen ADDR         registration listener: workers join via POST
//	                     /v1/register, progress is served on /v1/progress
//	-workers CSV         static fairnessd base URLs (optional with -listen)
//	-spec FILE           JSON grid or scenario array (or a positional file)
//	-backend NAME        backend every worker must run: montecarlo
//	                     (default), theory or chainsim — mismatched
//	                     workers are refused
//	-cache-dir DIR       coordinator-side disk cache; point it at the
//	                     directory the workers share and warm work items
//	                     are never shipped at all
//	-cache-max-bytes N   size-cap the coordinator cache (LRU eviction)
//	-shard-size N        pin work items per shard (0 = adaptive sizing)
//	-shard-target D      adaptive-sizing wall-time target per shard
//	-lease D             per-shard stream-inactivity lease; a worker that
//	                     stalls longer loses the shard
//	-retries N           attempts per work item before the run fails
//	-progress            print live progress lines to stderr
//	-trace FILE          write the run's NDJSON trace events — sweep and
//	                     cluster spans (cluster_start, shard_claim,
//	                     shard_ack, lease_expiry, worker_quarantine,
//	                     cluster_done) — to FILE ("-" = stderr)
//	-pprof               with -listen: mount net/http/pprof on the
//	                     coordinator mux (the listener also serves
//	                     GET /metrics with the run's registry)
//	-seed S              sweep base seed for grid specs
//	-json / -ndjson      report as JSON / stream outcomes as NDJSON
//	-out FILE            also write the JSON report to FILE
//
// Failure semantics: a worker that dies (or stalls past its lease)
// mid-shard loses only the shard's undelivered remainder — everything
// it already streamed stays merged, the remainder re-enters the shared
// queue for any live worker, and the merged report is unchanged. A
// registered worker that comes back later simply re-registers. The run
// fails only when a work item exhausts its retry budget, a static-only
// pool loses every worker, or a worker is misconfigured (wrong
// backend). A registry-backed run with no workers waits for the first
// registration instead of failing.
//
// Example session:
//
//	fairctl run -listen :7800 grid.json &
//	fairnessd -addr :7447 -register http://127.0.0.1:7800 -cache-dir /shared/cache &
//	fairnessd -addr :7448 -register http://127.0.0.1:7800 -cache-dir /shared/cache &
//	fairctl watch -coordinator http://127.0.0.1:7800
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	fairness "repro"
	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/table"
	"repro/internal/telemetry"
)

// stdout/stderr are swapped by tests; stderr carries summaries in
// -ndjson mode so stdout stays machine-parseable.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "watch":
		return watchCmd(args[1:])
	case "status":
		return statusCmd(args[1:])
	case "top":
		return topCmd(args[1:])
	case "trace":
		return traceCmd(args[1:])
	case "expand":
		return expandCmd(args[1:])
	case "submit":
		return submitCmd(args[1:])
	case "jobs":
		return jobsCmd(args[1:])
	case "cancel":
		return cancelCmd(args[1:])
	case "results":
		return resultsCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// signalContext cancels on SIGINT/SIGTERM so an interrupted distributed
// run reports what its workers finished.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// splitWorkers parses the -workers CSV into base URLs.
func splitWorkers(csv string) []string {
	var out []string
	for _, w := range strings.Split(csv, ",") {
		if u := cluster.NormalizeWorkerURL(w); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// loadSpecs reads a grid or scenario-array file — the same two formats
// fairsweep and fairnessd accept — into a validated scenario list.
func loadSpecs(path string, seed uint64) ([]fairness.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return scenario.DecodeSpecsOrGrid(data, seed)
}

// specPath resolves -spec against a positional file argument.
func specPath(specFlag string, fs *flag.FlagSet) (string, error) {
	path := specFlag
	if fs.NArg() > 0 {
		if path != "" {
			return "", fmt.Errorf("both -spec and a positional spec file given")
		}
		path = fs.Arg(0)
	}
	if path == "" {
		return "", fmt.Errorf("no spec: pass -spec FILE or a positional spec file")
	}
	return path, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	listen := fs.String("listen", "", "registration listener address (workers self-register via /v1/register)")
	workers := fs.String("workers", "", "static fairnessd worker base URLs (CSV; optional with -listen)")
	spec := fs.String("spec", "", "JSON grid or scenario-array file")
	backend := fs.String("backend", "montecarlo", "backend every worker must run: montecarlo, theory, chainsim, arena")
	cacheDir := fs.String("cache-dir", "", "coordinator-side disk result cache (share the workers' dir for free warm starts)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir: evict LRU entries beyond N bytes (0 = unbounded)")
	shardSize := fs.Int("shard-size", 0, "pin work items per shard (0 = adaptive per-worker sizing)")
	shardTarget := fs.Duration("shard-target", 0, "adaptive-sizing wall-time target per shard (0 = 1.5s)")
	lease := fs.Duration("lease", 0, "per-shard stream-inactivity lease (0 = 5m)")
	retries := fs.Int("retries", 0, "attempts per work item before the run fails (0 = default 3)")
	progress := fs.Bool("progress", false, "print live progress lines to stderr")
	traceFile := fs.String("trace", "", "write NDJSON trace events (cluster_start, shard_claim, lease_expiry, ...) to FILE (\"-\" = stderr)")
	pprofFlag := fs.Bool("pprof", false, "with -listen: mount net/http/pprof on the coordinator mux")
	seed := fs.Uint64("seed", 1, "sweep base seed for grid specs")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	asNDJSON := fs.Bool("ndjson", false, "stream outcomes as NDJSON lines as they complete")
	outFile := fs.String("out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := splitWorkers(*workers)
	if len(pool) == 0 && *listen == "" {
		return fmt.Errorf("no workers: pass -listen ADDR (self-registration) and/or -workers host1:port,host2:port")
	}
	path, err := specPath(*spec, fs)
	if err != nil {
		return err
	}
	specs, err := loadSpecs(path, *seed)
	if err != nil {
		return err
	}
	// In cluster mode the evaluator never runs locally — it names the
	// backend the workers must match and the cache namespace.
	ev, err := fairness.BackendByName(*backend)
	if err != nil {
		return err
	}

	ctx, stop := signalContext()
	defer stop()

	clusterOpts := fairness.ClusterOptions{
		Workers:         pool,
		ShardSize:       *shardSize,
		TargetShardTime: *shardTarget,
		LeaseTTL:        *lease,
		MaxAttempts:     *retries,
	}
	var engOpts []fairness.EngineOption
	var progressFns []func(fairness.ClusterProgress)

	// One registry for the whole run: the engine's sweep/cluster counters
	// land here and the coordinator's /metrics endpoint serves it.
	metrics := fairness.NewMetricsRegistry()
	var tracer *fairness.Tracer
	if *traceFile != "" {
		w, closeTrace, err := traceWriter(*traceFile)
		if err != nil {
			return err
		}
		defer closeTrace()
		tracer = fairness.NewTracerWithMetrics(w, metrics)
	}
	// The run's flight recorder: coordinator-side spans (sweep, gate_wait,
	// dispatch, merge), served at GET /v1/traces on the -listen mux so
	// `fairctl trace` can assemble the full tree against the workers'.
	recorder := fairness.NewFlightRecorder(0)
	engOpts = append(engOpts, fairness.WithTelemetry(metrics, tracer, recorder))

	// -listen: boot the registration listener so workers can join (and
	// leave) on their own, and serve live run progress for `watch`.
	if *listen != "" {
		reg := fairness.NewClusterRegistry(*backend, 0)
		regSrv := fairness.NewClusterRegistryServer(reg)
		mux := http.NewServeMux()
		regSrv.Register(mux)
		mux.Handle("GET /metrics", fairness.MetricsHandler(metrics))
		mux.Handle("GET /v1/traces", fairness.TracesHandler(recorder))
		if *pprofFlag {
			telemetry.RegisterPprof(mux)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("coordinator listener: %w", err)
		}
		httpSrv := &http.Server{Handler: mux}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		clusterOpts.Registry = reg
		progressFns = append(progressFns, regSrv.UpdateProgress)
		fmt.Fprintf(stderr, "coordinator listening on %s (POST /v1/register to join; GET /v1/progress to watch)\n", ln.Addr())
		if len(pool) == 0 {
			fmt.Fprintln(stderr, "waiting for workers to register...")
		}
	}
	if *progress {
		progressFns = append(progressFns, progressPrinter(stderr))
	}
	if fns := progressFns; len(fns) > 0 {
		engOpts = append(engOpts, fairness.WithClusterProgress(func(p fairness.ClusterProgress) {
			for _, fn := range fns {
				fn(p)
			}
		}))
	}
	engOpts = append(engOpts, fairness.WithCluster(clusterOpts))

	if *cacheDir != "" {
		disk, err := fairness.NewDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		if *cacheMaxBytes > 0 {
			disk.SetMaxBytes(*cacheMaxBytes)
		}
		engOpts = append(engOpts, fairness.WithCache(disk))
	}
	if ev != nil {
		engOpts = append(engOpts, fairness.WithBackend(ev))
	}
	enc := json.NewEncoder(stdout)
	if *asNDJSON {
		engOpts = append(engOpts, fairness.WithObserver(func(o fairness.SweepOutcome) {
			enc.Encode(o)
		}))
	}
	eng := fairness.NewEngine(engOpts...)

	rep, err := eng.Sweep(ctx, specs)
	if err != nil {
		if rep != nil && rep.Partial {
			fmt.Fprintf(stderr, "cluster run interrupted: %s\n", rep.Summary())
		}
		return err
	}
	summary := rep.Summary()
	if n := len(pool); n > 0 {
		summary = fmt.Sprintf("%s across %d static workers", summary, n)
	}
	switch {
	case *asNDJSON:
		fmt.Fprintln(stderr, summary)
	case *asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		fmt.Fprintln(stdout, summary)
	default:
		fmt.Fprintln(stdout, rep.Table())
		fmt.Fprintln(stdout, summary)
	}
	if *outFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outFile)
	}
	return nil
}

// traceWriter resolves the -trace flag: "-" streams events to stderr,
// anything else creates (or truncates) the named NDJSON file.
func traceWriter(path string) (io.Writer, func(), error) {
	if path == "-" {
		return stderr, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// progressPrinter renders one throttled progress line per snapshot
// burst — the -progress stderr ticker.
func progressPrinter(w io.Writer) func(fairness.ClusterProgress) {
	var last time.Time
	return func(p fairness.ClusterProgress) {
		// Serialised by the cluster's OnProgress contract; throttle to
		// one line per 500ms plus the final snapshot.
		if !p.Done && time.Since(last) < 500*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(w, "progress: %d/%d delivered · %d local cache hits · shards %d claimed / %d acked / %d requeued · %d workers\n",
			p.Delivered, p.Total, p.LocalCacheHits, p.ShardsClaimed, p.ShardsAcked, p.ShardsRequeued, p.Workers)
	}
}

// getJSON fetches one JSON document with a bounded timeout.
func getJSON(ctx context.Context, url string, v any) error {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

// watchCmd polls coordinator and/or worker /v1/progress endpoints and
// renders the live shard table — the operator's view of a running
// distributed sweep.
func watchCmd(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (fairctl run -listen) to poll for run progress")
	workers := fs.String("workers", "", "fairnessd worker base URLs (CSV) to poll for per-worker progress")
	interval := fs.Duration("interval", time.Second, "poll interval")
	once := fs.Bool("once", false, "poll once and exit (scripting/CI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	coord := cluster.NormalizeWorkerURL(*coordinator)
	pool := splitWorkers(*workers)
	if coord == "" && len(pool) == 0 {
		return fmt.Errorf("nothing to watch: pass -coordinator URL and/or -workers CSV")
	}
	ctx, stop := signalContext()
	defer stop()
	for {
		done, err := watchTick(ctx, coord, pool)
		if err != nil {
			return err
		}
		if *once || done {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// watchTick renders one watch frame; it reports true once the
// coordinator says the run is complete.
func watchTick(ctx context.Context, coord string, pool []string) (bool, error) {
	now := time.Now().Format("15:04:05")
	done := false
	if coord != "" {
		var p fairness.ClusterProgress
		if err := getJSON(ctx, coord+"/v1/progress", &p); err != nil {
			fmt.Fprintf(stdout, "[%s] coordinator %s: %v\n", now, coord, err)
		} else {
			state := "running"
			if p.Done {
				state = "done"
				done = p.Total > 0
			}
			fmt.Fprintf(stdout, "[%s] coordinator %s: %s · %d/%d delivered · %d local cache hits · shards %d claimed / %d acked / %d requeued · %d workers\n",
				now, coord, state, p.Delivered, p.Total, p.LocalCacheHits,
				p.ShardsClaimed, p.ShardsAcked, p.ShardsRequeued, p.Workers)
			if len(p.Shards) > 0 {
				tb := table.New("Shard", "Worker", "Scenarios", "Streamed", "State", "Age(s)").
					AlignAll(table.Right).SetAlign(0, table.Left).SetAlign(1, table.Left).SetAlign(4, table.Left)
				for _, sh := range p.Shards {
					tb.AddRow(fmt.Sprintf("%.12s", sh.ID), sh.Worker, fmt.Sprintf("%d", sh.Scenarios),
						fmt.Sprintf("%d", sh.Streamed), sh.State,
						fmt.Sprintf("%.1f", float64(sh.AgeMS)/1000))
				}
				fmt.Fprintln(stdout, tb.String())
			}
		}
	}
	for _, w := range pool {
		var p cluster.WorkerProgress
		if err := getJSON(ctx, w+"/v1/progress", &p); err != nil {
			fmt.Fprintf(stdout, "[%s] worker %s: %v\n", now, w, err)
			continue
		}
		fmt.Fprintf(stdout, "[%s] worker %s: %d in-flight · %d done · %d acked · %d streamed · %.2f scenarios/s\n",
			now, w, p.ShardsInFlight, p.ShardsDone, p.ShardsAcked, p.OutcomesStreamed, p.ScenariosPerSec)
		for _, sh := range p.Shards {
			if sh.State == "claimed" || sh.State == "done" {
				fmt.Fprintf(stdout, "    shard %.12s: %d/%d streamed, %s, %.1fs\n",
					sh.ID, sh.Streamed, sh.Scenarios, sh.State, float64(sh.AgeMS)/1000)
			}
		}
	}
	if done {
		fmt.Fprintln(stdout, "run complete")
	}
	return done, nil
}

func statusCmd(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	workers := fs.String("workers", "", "fairnessd worker base URLs (CSV, required)")
	asJSON := fs.Bool("json", false, "print worker health as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := splitWorkers(*workers)
	if len(pool) == 0 {
		return fmt.Errorf("no workers: pass -workers host1:port,host2:port")
	}
	ctx, stop := signalContext()
	defer stop()
	health := fairness.ClusterStatus(ctx, pool)
	if *asJSON {
		data, err := json.MarshalIndent(health, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		return nil
	}
	tb := table.New("Worker", "Status", "Backend", "Cache", "In-flight", "Done", "Acked", "Streamed", "Scen/s", "Uptime(s)").
		AlignAll(table.Right).SetAlign(0, table.Left).SetAlign(1, table.Left)
	up := 0
	for _, h := range health {
		status := "ok"
		if !h.OK {
			status = "DOWN: " + h.Error
		} else {
			up++
		}
		tb.AddRow(h.URL, status, h.Backend, h.Cache,
			fmt.Sprintf("%d", h.ShardsInFlight), fmt.Sprintf("%d", h.ShardsDone),
			fmt.Sprintf("%d", h.ShardsAcked), fmt.Sprintf("%d", h.OutcomesStreamed),
			fmt.Sprintf("%.2f", h.ScenariosPerSec),
			fmt.Sprintf("%.0f", float64(h.UptimeMS)/1000))
	}
	fmt.Fprintln(stdout, tb.String())
	fmt.Fprintf(stdout, "%d/%d workers up\n", up, len(health))
	if up == 0 {
		return fmt.Errorf("no workers up")
	}
	return nil
}

// topCmd polls a /metrics endpoint (a fairnessd worker or a `fairctl
// run -listen` coordinator) and renders the fairness_* series as a live
// table, with a per-second rate column for counters derived from
// successive polls — a minimal `top` for sweep telemetry that needs no
// Prometheus server.
func topCmd(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	url := fs.String("url", "", "base URL serving /metrics (fairnessd, or fairctl run -listen)")
	prefix := fs.String("prefix", "fairness_", "only show series whose name starts with this prefix")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "poll once and exit (scripting/CI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := cluster.NormalizeWorkerURL(*url)
	if base == "" {
		return fmt.Errorf("no endpoint: pass -url http://host:port")
	}
	ctx, stop := signalContext()
	defer stop()
	var (
		prev   map[string]float64
		prevAt time.Time
	)
	for {
		series, err := fetchMetrics(ctx, base+"/metrics")
		if err != nil {
			if *once {
				return err
			}
			fmt.Fprintf(stdout, "[%s] %s: %v\n", time.Now().Format("15:04:05"), base, err)
		} else {
			now := time.Now()
			ids := make([]string, 0, len(series))
			for id := range series {
				if strings.HasPrefix(id, *prefix) {
					ids = append(ids, id)
				}
			}
			sort.Strings(ids)
			tb := table.New("Series", "Value", "Rate/s").
				AlignAll(table.Right).SetAlign(0, table.Left)
			for _, id := range ids {
				rate := ""
				// Rates only make sense for cumulative counters, and only
				// once two polls straddle a measurable window. A negative
				// delta means the counter restarted from zero (worker
				// restart) — mark the reset instead of printing a
				// nonsense negative rate; the next poll re-baselines.
				if strings.Contains(id, "_total") && prev != nil {
					if dt := now.Sub(prevAt).Seconds(); dt > 0 {
						if p, ok := prev[id]; ok {
							if d := series[id] - p; d < 0 {
								rate = "reset"
							} else {
								rate = fmt.Sprintf("%.2f", d/dt)
							}
						}
					}
				}
				tb.AddRow(id, strconv.FormatFloat(series[id], 'g', -1, 64), rate)
			}
			fmt.Fprintf(stdout, "[%s] %s — %d series\n%s\n",
				now.Format("15:04:05"), base, len(ids), tb.String())
			prev, prevAt = series, now
		}
		if *once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// traceCmd fetches one distributed trace from any number of flight
// recorders (the job server, the coordinator's -listen mux, worker
// /v1/traces endpoints), assembles the span tree, and prints it with a
// per-stage breakdown and the critical path. The argument is a job id
// (j-...; resolved to its trace via GET /v1/jobs/{id}) or a raw
// trace id.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	server := fs.String("server", "", "fairnessd base URL — resolves job ids and serves as a trace source")
	sources := fs.String("sources", "", "extra /v1/traces sources (CSV: coordinator and worker base URLs)")
	asJSON := fs.Bool("json", false, "print the merged span records as JSON instead of the rendered tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fairctl trace [-server URL] [-sources CSV] JOB_ID|TRACE_ID")
	}
	id := fs.Arg(0)
	base := cluster.NormalizeWorkerURL(*server)
	srcs := splitWorkers(*sources)
	if base != "" {
		srcs = append([]string{base}, srcs...)
	}
	if len(srcs) == 0 {
		return fmt.Errorf("no trace sources: pass -server URL and/or -sources CSV")
	}
	ctx, stop := signalContext()
	defer stop()

	traceID := id
	if strings.HasPrefix(id, "j-") {
		if base == "" {
			return fmt.Errorf("resolving job id %s needs -server", id)
		}
		info, err := fairness.NewJobClient(base).Get(ctx, id)
		if err != nil {
			return err
		}
		if info.TraceID == "" {
			return fmt.Errorf("job %s carries no trace id", id)
		}
		traceID = info.TraceID
	}

	// Overlapping sources are fine: BuildSpanTree deduplicates by
	// span_id, so fetching the same recorder through two URLs is
	// harmless.
	var spans []fairness.SpanRecord
	fetched := 0
	for _, src := range srcs {
		var resp struct {
			Spans []fairness.SpanRecord `json:"spans"`
		}
		if err := getJSON(ctx, src+"/v1/traces?trace_id="+traceID, &resp); err != nil {
			fmt.Fprintf(stderr, "trace: %s: %v (skipped)\n", src, err)
			continue
		}
		fetched++
		spans = append(spans, resp.Spans...)
	}
	if fetched == 0 {
		return fmt.Errorf("no reachable trace source")
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans for trace %s (flight recorders hold only recent history)", traceID)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(spans)
	}

	tree := fairness.BuildSpanTree(spans)
	fmt.Fprintf(stdout, "trace %s — %d spans, %d root(s)\n\n", traceID, tree.Spans, len(tree.Roots))
	for _, root := range tree.Roots {
		printSpanNode(root, 0)
	}

	// Per-stage self-time breakdown: each stage's total is wall time not
	// covered by a child span, so the stages partition the root's
	// duration and the percentages reconcile against the makespan.
	var totalMS float64
	stages := map[string]float64{}
	for _, root := range tree.Roots {
		totalMS += root.DurationMS
		for name, ms := range root.StageBreakdown() {
			stages[name] += ms
		}
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool { return stages[names[a]] > stages[names[b]] })
	fmt.Fprintf(stdout, "\nstage breakdown (self time, %% of %.1fms makespan):\n", totalMS)
	tb := table.New("Stage", "Self ms", "%").AlignAll(table.Right).SetAlign(0, table.Left)
	for _, name := range names {
		pct := 0.0
		if totalMS > 0 {
			pct = 100 * stages[name] / totalMS
		}
		tb.AddRow(name, fmt.Sprintf("%.1f", stages[name]), fmt.Sprintf("%.1f", pct))
	}
	fmt.Fprintln(stdout, tb.String())

	fmt.Fprintln(stdout, "critical path (the chain that determined when the run ended):")
	for i, n := range tree.Roots[0].CriticalPath() {
		fmt.Fprintf(stdout, "  %s%s [%s] %.1fms%s\n",
			strings.Repeat("  ", i), n.Name, n.Service, n.DurationMS, spanAttrSuffix(n.Attrs))
	}
	return nil
}

// printSpanNode renders one span-tree node (and its subtree) as an
// indented line: name, service, duration, attributes.
func printSpanNode(n *fairness.SpanNode, depth int) {
	fmt.Fprintf(stdout, "%s%s [%s] %.1fms%s\n",
		strings.Repeat("  ", depth), n.Name, n.Service, n.DurationMS, spanAttrSuffix(n.Attrs))
	for _, c := range n.Children {
		printSpanNode(c, depth+1)
	}
}

// spanAttrSuffix renders a span's attributes as sorted " k=v" pairs.
func spanAttrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}

// fetchMetrics scrapes one Prometheus text exposition into a flat
// series-id -> value map.
func fetchMetrics(ctx context.Context, url string) (map[string]float64, error) {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return fairness.ParseMetricsText(io.LimitReader(resp.Body, 4<<20))
}

func expandCmd(args []string) error {
	fs := flag.NewFlagSet("expand", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON grid or scenario-array file")
	seed := fs.Uint64("seed", 1, "sweep base seed for grid specs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := specPath(*spec, fs)
	if err != nil {
		return err
	}
	specs, err := loadSpecs(path, *seed)
	if err != nil {
		return err
	}
	type hashed struct {
		fairness.Scenario
		Hash string `json:"hash"`
	}
	out := make([]hashed, len(specs))
	for i, s := range specs {
		h, err := s.Hash()
		if err != nil {
			return err
		}
		out[i] = hashed{Scenario: s.Normalized(), Hash: h}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", data)
	fmt.Fprintf(stdout, "expanded %d scenarios\n", len(specs))
	return nil
}

// Job-service commands: clients of a fairnessd -jobs daemon's /v1/jobs
// API (or any server mounted with fairness.WithJobServer).

// submitCmd posts one named sweep job and prints its snapshot; with
// -wait it polls until the job is terminal and prints the final state.
//
// Example — submit a grid for tenant "acme" and wait for it:
//
//	fairctl submit -server 127.0.0.1:7447 -tenant acme -name nightly \
//	    -priority 1 -wait grid.json
func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	server := fs.String("server", "", "job server base URL (fairnessd -jobs; default 127.0.0.1:7447)")
	spec := fs.String("spec", "", "JSON grid or scenario-array file")
	name := fs.String("name", "", "job name (for humans; need not be unique)")
	tenant := fs.String("tenant", "", `submitting tenant ("" = default)`)
	priority := fs.Int("priority", 0, "fair-share priority bias: each step doubles/halves the tenant weight (clamped to ±3)")
	deadline := fs.Duration("deadline", 0, "soft deadline from now; urgency boosts the job's weight (never preempts)")
	seed := fs.Uint64("seed", 1, "sweep base seed for grid specs")
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	poll := fs.Duration("poll", 0, "-wait poll interval (0 = 200ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := specPath(*spec, fs)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	client := fairness.NewJobClient(*server)
	info, err := client.Submit(ctx, fairness.JobSubmitBody{
		Name:       *name,
		Tenant:     *tenant,
		Priority:   *priority,
		DeadlineMS: deadline.Milliseconds(),
		Seed:       *seed,
		Spec:       json.RawMessage(data),
	})
	if err != nil {
		return err
	}
	if *wait {
		fmt.Fprintf(stderr, "submitted %s (%d scenarios), waiting...\n", info.ID, info.Scenarios)
		if info, err = client.Wait(ctx, info.ID, *poll); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

// jobsCmd lists jobs in submission order, optionally filtered.
func jobsCmd(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	server := fs.String("server", "", "job server base URL (default 127.0.0.1:7447)")
	tenant := fs.String("tenant", "", "only this tenant's jobs")
	state := fs.String("state", "", "only jobs in this state (queued, running, done, failed, cancelled)")
	asJSON := fs.Bool("json", false, "print the job list as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	infos, err := fairness.NewJobClient(*server).List(ctx, *tenant, fairness.JobState(*state))
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(infos, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		return nil
	}
	tb := table.New("ID", "Name", "Tenant", "State", "Scenarios", "Submitted", "Took(s)").
		AlignAll(table.Right).SetAlign(0, table.Left).SetAlign(1, table.Left).
		SetAlign(2, table.Left).SetAlign(3, table.Left)
	for _, j := range infos {
		state := string(j.State)
		if j.Partial {
			state += " (partial)"
		}
		took := ""
		if j.FinishedMS > 0 && j.StartedMS > 0 {
			took = fmt.Sprintf("%.1f", float64(j.FinishedMS-j.StartedMS)/1000)
		}
		tb.AddRow(j.ID, j.Name, j.Tenant, state, fmt.Sprintf("%d", j.Scenarios),
			time.UnixMilli(j.SubmittedMS).Format("15:04:05"), took)
	}
	fmt.Fprintln(stdout, tb.String())
	fmt.Fprintf(stdout, "%d jobs\n", len(infos))
	return nil
}

// cancelCmd requests cancellation of one job; partial results computed
// so far stay retrievable via `fairctl results`.
func cancelCmd(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	server := fs.String("server", "", "job server base URL (default 127.0.0.1:7447)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fairctl cancel [-server URL] JOB_ID")
	}
	ctx, stop := signalContext()
	defer stop()
	info, err := fairness.NewJobClient(*server).Cancel(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cancel requested: %s was %s\n", info.ID, info.State)
	return nil
}

// resultsCmd retrieves a finished job's merged outcomes, walking the
// result pages. -ndjson streams one outcome JSON per line — the same
// shape `fairsweep run -ndjson` emits, so the two are diffable after
// normalizing the timing/cache fields.
func resultsCmd(args []string) error {
	fs := flag.NewFlagSet("results", flag.ContinueOnError)
	server := fs.String("server", "", "job server base URL (default 127.0.0.1:7447)")
	asJSON := fs.Bool("json", false, "print the merged report as JSON")
	asNDJSON := fs.Bool("ndjson", false, "stream outcomes as NDJSON lines")
	outFile := fs.String("out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fairctl results [-server URL] [-json|-ndjson] JOB_ID")
	}
	ctx, stop := signalContext()
	defer stop()
	info, outcomes, err := fairness.NewJobClient(*server).Results(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	rep := &fairness.SweepReport{Outcomes: outcomes, Stats: info.Stats, Partial: info.Partial}
	summary := fmt.Sprintf("job %s (%s): %s", info.ID, info.State, rep.Summary())
	switch {
	case *asNDJSON:
		enc := json.NewEncoder(stdout)
		for _, o := range outcomes {
			if err := enc.Encode(o); err != nil {
				return err
			}
		}
		fmt.Fprintln(stderr, summary)
	case *asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
		fmt.Fprintln(stdout, summary)
	default:
		fmt.Fprintln(stdout, rep.Table())
		fmt.Fprintln(stdout, summary)
	}
	if *outFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outFile)
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, strings.TrimLeft(`
fairctl — coordinate fairness-scenario sweeps across fairnessd workers

commands:
  run -listen ADDR|-workers CSV [flags] spec.json
                                         distribute the sweep, print the report
  watch -coordinator URL [-workers CSV]  live per-shard progress of a running sweep
  status -workers CSV [-json]            probe every worker's /v1/healthz
  top -url URL [-interval D] [-once]     live fairness_* metrics of one /metrics
                                         endpoint, with counter rates
  trace [-server URL] [-sources CSV] [-json] JOB_ID|TRACE_ID
                                         assemble one distributed trace from
                                         /v1/traces flight recorders: span tree,
                                         per-stage breakdown, critical path
  expand [-spec FILE|spec.json] [-seed]  expand the grid, print scenarios + hashes

job-service commands (against fairnessd -jobs):
  submit [-server URL] [-name N] [-tenant T] [-priority P] [-deadline D]
         [-wait] spec.json              submit a named sweep job
  jobs [-server URL] [-tenant T] [-state S] [-json]
                                         list jobs in submission order
  cancel [-server URL] JOB_ID            cancel (partial results retained)
  results [-server URL] [-json|-ndjson] [-out FILE] JOB_ID
                                         paginated merged outcomes of a job

run flags:
  -listen ADDR  -workers CSV  -spec FILE  -backend NAME  -cache-dir DIR
  -cache-max-bytes N  -shard-size N  -shard-target D  -lease D  -retries N
  -progress  -trace FILE  -pprof  -seed S  -json  -ndjson  -out FILE
`, "\n"))
}
