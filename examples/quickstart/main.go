// Quickstart: evaluate the fairness of the four incentive protocols the
// paper analyses, using the public API only.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fairness "repro"
)

func main() {
	// Miner A holds 20% of the initial resource; B holds the rest —
	// the paper's canonical two-miner game (Section 3.1).
	initial := fairness.TwoMiner(0.2)
	cfg := fairness.EvalConfig{Trials: 800, Blocks: 4000, Seed: 42}

	fmt.Println("Fairness of blockchain incentives (a = 0.2, w = 0.01, v = 0.1):")
	fmt.Println()
	for _, p := range []fairness.Protocol{
		fairness.NewPoW(0.01),
		fairness.NewMLPoS(0.01),
		fairness.NewSLPoS(0.01),
		fairness.NewCPoS(0.01, 0.1, 32),
	} {
		v, err := fairness.Evaluate(p, initial, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", v)
	}

	fmt.Println()
	fmt.Println("Theory check (Theorems 4.2, 4.3, 4.10 at eps = delta = 0.1):")
	fmt.Printf("  PoW needs n >= %d blocks for certified robust fairness\n",
		fairness.PoWMinBlocks(0.2, fairness.DefaultParams))
	fmt.Printf("  ML-PoS with w=0.01 certified at n=5000? %t (limit fair mass %.3f)\n",
		fairness.MLPoSSufficient(5000, 0.01, 0.2, fairness.DefaultParams),
		fairness.MLPoSLimitFairProb(0.2, 0.01, 0.1))
	fmt.Printf("  C-PoS with w=0.01, v=0.1, P=32 certified at n=5000? %t\n",
		fairness.CPoSSufficient(5000, 0.01, 0.1, 32, 0.2, fairness.DefaultParams))
	fmt.Printf("  overall ranking: %v\n", fairness.Ranking())
}
