// Sweep: ask a what-if question the paper's fixed exhibits cannot —
// how does the reward size w interact with the initial stake a across
// protocols? Expand a declarative grid, fan it across all cores with a
// result cache, and print the fairness verdicts.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	fairness "repro"
)

func main() {
	grid := fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 3000, Trials: 400, Seed: 7},
		Protocols: []string{"pow", "mlpos", "cpos"},
		W:         []float64{0.001, 0.01, 0.1},
		Stake:     []float64{0.1, 0.3},
	}
	specs, err := fairness.ExpandScenarios(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sweeping %d scenarios (3 protocols × 3 rewards × 2 stakes)...\n\n", len(specs))

	cache := fairness.NewSweepCache(0)
	rep, err := fairness.Sweep(specs, fairness.SweepOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Table())
	fmt.Println(rep.Summary())

	// The cache makes overlapping follow-up questions nearly free: the
	// mlpos column re-asked alone recomputes nothing.
	followUp := grid
	followUp.Protocols = []string{"mlpos"}
	subset, err := fairness.ExpandScenarios(followUp)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := fairness.Sweep(subset, fairness.SweepOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfollow-up: %s\n", rep2.Summary())

	fmt.Println("\nReading: small w keeps ML-PoS robustly fair (Theorem 4.3); at w=0.1")
	fmt.Println("compounding dominates for every stake. C-PoS holds out far longer and")
	fmt.Println("only loses robust fairness at the largest reward with the smallest stake.")
}
