// Protocol-design demo: use the paper's theorems as a design tool. Given
// a target (ε,δ)-fairness for a 20% miner over one month of epochs, sweep
// the C-PoS design space (proposer reward w, inflation reward v, shard
// count P), certify candidates with Theorem 4.10, and validate the chosen
// design with a Monte-Carlo run.
//
//	go run ./examples/protocoldesign
package main

import (
	"fmt"
	"log"

	fairness "repro"
	"repro/internal/table"
)

func main() {
	const (
		a      = 0.2
		epochs = 6750 // ~one month of 6.4-minute epochs
	)
	pr := fairness.DefaultParams
	fmt.Printf("Design target: (eps=%.2f, delta=%.2f)-fairness for a %.0f%% miner over %d epochs.\n\n",
		pr.Eps, pr.Delta, a*100, epochs)

	tb := table.New("w", "v", "P", "Thm 4.10 certified", "measured unfair").AlignAll(table.Right)
	type design struct {
		w, v float64
		p    int
	}
	candidates := []design{
		{0.01, 0, 1},    // ML-PoS equivalent
		{0.01, 0.01, 1}, // a little inflation
		{0.01, 0.1, 1},  // strong inflation, no sharding
		{0.01, 0, 32},   // sharding only
		{0.01, 0.1, 32}, // Ethereum 2.0-like
		{0.001, 0.1, 32},
	}
	var chosen *design
	for i := range candidates {
		d := candidates[i]
		ok := fairness.CPoSSufficient(epochs, d.w, d.v, d.p, a, pr)
		v, err := fairness.Evaluate(fairness.NewCPoS(d.w, d.v, d.p), fairness.TwoMiner(a),
			fairness.EvalConfig{Trials: 600, Blocks: epochs, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(fmt.Sprintf("%.3f", d.w), fmt.Sprintf("%.2f", d.v), d.p, ok, fmt.Sprintf("%.3f", v.UnfairProbability))
		if ok && chosen == nil {
			chosen = &d
		}
	}
	fmt.Println(tb.String())

	if chosen == nil {
		fmt.Println("No candidate certified; increase v, increase P, or reduce w.")
		return
	}
	fmt.Printf("\nFirst certified design: w=%.3f, v=%.2f, P=%d.\n", chosen.w, chosen.v, chosen.p)
	fmt.Println("Certified designs are guaranteed by Theorem 4.10; the measured column")
	fmt.Println("shows the guarantee is conservative — some uncertified designs also pass")
	fmt.Println("empirically, but only the certificate holds for every adversarial horizon.")

	// Contrast with what ML-PoS would need (Theorem 4.3).
	fmt.Println("\nFor comparison, plain ML-PoS at the same horizon:")
	for _, w := range []float64{0.01, 0.001, 0.0001} {
		fmt.Printf("  w=%.4f certified? %t\n", w, fairness.MLPoSSufficient(epochs, w, a, pr))
	}
	fmt.Println("Inflation + sharding buy certified fairness at rewards ML-PoS cannot sustain.")
}
