// Chainsim demo: run block-level two-miner networks — the stand-ins for
// the paper's Geth, Qtum and NXT deployments — with real SHA-256 puzzles
// and full block validation, then demonstrate that forged blocks are
// rejected.
//
//	go run ./examples/chainsim
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/chainsim"
)

const (
	circulation = 1_000_000
	reward      = 10_000 // w = 0.01 of circulation
	blocks      = 300
)

func main() {
	miners := []chainsim.MinerSpec{
		{Name: "A", Resource: 200_000}, // 20%
		{Name: "B", Resource: 800_000}, // 80%
	}
	perUnit := uint64(math.Exp2(64) / 32 / circulation)

	runs := []struct {
		name   string
		engine chainsim.Engine
		spec   []chainsim.MinerSpec
	}{
		{"PoW   (Geth analogue)", &chainsim.PoWEngine{Target: 1 << 57, BlockReward: reward},
			[]chainsim.MinerSpec{{Name: "A", Resource: 20}, {Name: "B", Resource: 80}}},
		{"ML-PoS (Qtum analogue)", &chainsim.MLPoSEngine{TargetPerUnit: perUnit, BlockReward: reward}, miners},
		{"SL-PoS (NXT analogue)", &chainsim.SLPoSEngine{BlockReward: reward}, miners},
		{"FSL-PoS (treated NXT)", &chainsim.FSLPoSEngine{BlockReward: reward}, miners},
	}

	fmt.Printf("Mining %d blocks on each network (A holds 20%% of the resource):\n\n", blocks)
	for _, r := range runs {
		net, err := chainsim.NewNetwork(chainsim.NetworkConfig{
			Engine: r.engine, Miners: r.spec, Seed: 1, Salt: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := net.RunBlocks(blocks); err != nil {
			log.Fatal(err)
		}
		if err := net.Chain.CheckConservation(); err != nil {
			log.Fatalf("%s: ledger conservation broken: %v", r.name, err)
		}
		tip := net.Chain.Tip()
		fmt.Printf("%-23s height=%d tip=%s  λ_A=%.3f  stakeShare_A=%.3f\n",
			r.name, net.Chain.Height(), tip.Hash().Hex(), net.Lambda("A"), net.StakeShare("A"))
	}

	// Failure injection: a losing staker forges an SL-PoS block.
	fmt.Println("\nForgery demo (SL-PoS): the lottery loser claims the next block.")
	net, err := chainsim.NewNetwork(chainsim.NetworkConfig{
		Engine: &chainsim.SLPoSEngine{BlockReward: reward}, Miners: miners, Salt: 123,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.RunBlocks(1); err != nil {
		log.Fatal(err)
	}
	// Mine the honest candidate for the next height, then let the lottery
	// loser claim it.
	slEngine := &chainsim.SLPoSEngine{BlockReward: reward, Stakers: []chainsim.Address{
		chainsim.AddressFromSeed("A"), chainsim.AddressFromSeed("B"),
	}}
	honest, err := slEngine.Mine(net.Chain.Tip(), net.Chain.StakeView(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	forged := honest
	if honest.Proposer == chainsim.AddressFromSeed("A") {
		forged.Proposer = chainsim.AddressFromSeed("B")
	} else {
		forged.Proposer = chainsim.AddressFromSeed("A")
	}
	err = net.Chain.Append(&chainsim.Block{Header: forged})
	fmt.Printf("  honest winner of height %d: %s\n", honest.Height, net.NameOf(honest.Proposer))
	fmt.Printf("  forged claim by %s rejected: %v\n", net.NameOf(forged.Proposer), err)
	if err == nil {
		log.Fatal("BUG: forged block was accepted")
	}
	if err := net.Chain.Append(&chainsim.Block{Header: honest}); err != nil {
		log.Fatalf("honest block rejected: %v", err)
	}
	fmt.Println("  honest block accepted after the forgery attempt")

	// And a replay of the whole chain validates end-to-end.
	genesis := map[chainsim.Address]uint64{
		chainsim.AddressFromSeed("A"): 200_000,
		chainsim.AddressFromSeed("B"): 800_000,
	}
	if err := net.Chain.Validate(genesis); err != nil {
		log.Fatalf("replay validation failed: %v", err)
	}
	fmt.Println("  full-chain replay validation: ok")
}
