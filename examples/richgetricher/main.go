// Rich-get-richer demo: watch SL-PoS (the NXT-style single lottery) drive
// a 30%-stake miner to ruin while FSL-PoS — the paper's corrected lottery
// — keeps her income proportional, on identical random seeds.
//
//	go run ./examples/richgetricher
package main

import (
	"fmt"
	"log"

	fairness "repro"
	"repro/internal/montecarlo"
	"repro/internal/plot"
)

func main() {
	const (
		a      = 0.3
		w      = 0.01
		blocks = 20000
		trials = 400
	)
	fmt.Printf("Two miners: A holds %.0f%%, B holds %.0f%%. Block reward w = %.2f.\n\n", a*100, (1-a)*100, w)

	chart := &plot.Chart{
		Title:  "Mean reward fraction of miner A (SL-PoS vs FSL-PoS)",
		XLabel: "Number of Blocks (log)", YLabel: "mean lambda_A",
		YMin: 0, YMax: 0.5, LogX: true,
	}
	cps := montecarlo.LogCheckpoints(blocks, 20)
	for _, p := range []fairness.Protocol{fairness.NewSLPoS(w), fairness.NewFSLPoS(w)} {
		res, err := fairness.MonteCarlo(p, fairness.TwoMiner(a), fairness.MonteCarloConfig{
			Trials: trials, Blocks: blocks, Checkpoints: cps, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		chart.AddSeries(p.Name(), res.CheckpointsAsFloat(), res.MeanSeries())
		final := res.FinalSummary()
		fmt.Printf("%-8s after %d blocks: mean λ_A = %.4f (p5 %.4f, p95 %.4f)\n",
			p.Name(), blocks, final.Mean, final.P5, final.P95)
	}
	chart.AddHLine("fair share a", a)
	fmt.Println()
	fmt.Println(chart.ASCII(72, 18))

	fmt.Println("Why: the SL-PoS win probability is not proportional to stake —")
	for _, z := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		fmt.Printf("  share %.1f wins the next block with prob %.3f\n", z, fairness.SLPoSWinProbTwoMiner(z))
	}
	fmt.Println("Below 1/2 the drift is negative, above 1/2 positive: the game is")
	fmt.Println("absorbed at monopoly (Theorem 4.9). FSL-PoS repairs the lottery with")
	fmt.Println("time = -ln(1-U)/stake, an exponential race that is exactly proportional.")

	fmt.Println("\nMulti-miner win probabilities (Lemma 6.1), shares {0.1, 0.2, 0.3, 0.4}:")
	probs := fairness.SLPoSWinProbMulti([]float64{0.1, 0.2, 0.3, 0.4})
	for i, p := range probs {
		fmt.Printf("  miner %d: share %.1f -> win prob %.3f\n", i+1, []float64{0.1, 0.2, 0.3, 0.4}[i], p)
	}
	fmt.Println("Every miner except the largest wins less than her share.")
}
