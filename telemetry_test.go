package fairness_test

// Golden reconciliation tests for the telemetry layer's public face:
// an Engine wired with WithTelemetry must expose a /metrics endpoint
// whose parsed series agree exactly with the sweep report it produced —
// the counters are the report's statistics, not a parallel estimate.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fairness "repro"
)

// telemetryTestSpecs is a small grid with a deliberate duplicate, so
// cache-hit accounting is exercised even on the cold pass.
func telemetryTestSpecs(t *testing.T) []fairness.Scenario {
	t.Helper()
	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 200, Trials: 20, Seed: 11},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.1, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Append a duplicate of the first scenario under another name: an
	// in-sweep cache hit on the very first pass.
	dup := specs[0]
	dup.Name = "duplicate-of-first"
	return append(specs, dup)
}

// TestMetricsExpositionReconcilesWithReport sweeps cold then warm and
// asserts the scraped /metrics series equal the merged reports' stats.
func TestMetricsExpositionReconcilesWithReport(t *testing.T) {
	specs := telemetryTestSpecs(t)
	metrics := fairness.NewMetricsRegistry()
	var traceBuf bytes.Buffer
	eng := fairness.NewEngine(
		fairness.WithCache(fairness.NewSweepCache(len(specs))),
		fairness.WithTelemetry(metrics, fairness.NewTracer(&traceBuf)),
	)

	// The simulation-core counters live on the process-global registry;
	// reconcile their deltas across the two sweeps against the reports.
	before := fairness.DefaultMetrics().Snapshot()

	cold, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	after := fairness.DefaultMetrics().Snapshot()
	wantCoreTrials := float64(cold.Stats.TrialsRun + warm.Stats.TrialsRun)
	if got := after["fairness_montecarlo_trials_total"] - before["fairness_montecarlo_trials_total"]; got != wantCoreTrials {
		t.Errorf("montecarlo trials counter moved by %v, want %v (the reports' TrialsRun)", got, wantCoreTrials)
	}
	// Every trial of this grid steps exactly Blocks=200 protocol blocks,
	// and the blocks counter must meter real steps — not one synthetic
	// checkpoint entry per trial on top.
	if got, want := after["fairness_montecarlo_blocks_total"]-before["fairness_montecarlo_blocks_total"], wantCoreTrials*200; got != want {
		t.Errorf("montecarlo blocks counter moved by %v, want %v (TrialsRun × 200 blocks)", got, want)
	}

	// Scrape the registry over real HTTP — the test goes through the
	// same handler an operator's Prometheus would.
	ts := httptest.NewServer(fairness.MetricsHandler(metrics))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	series, err := fairness.ParseMetricsText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	label := `{backend="montecarlo"}`
	wantScenarios := float64(cold.Stats.Scenarios + warm.Stats.Scenarios)
	wantHits := float64(cold.Stats.CacheHits + warm.Stats.CacheHits)
	wantComputed := float64(cold.Stats.Computed + warm.Stats.Computed)
	wantTrials := float64(cold.Stats.TrialsRun + warm.Stats.TrialsRun)
	checks := map[string]float64{
		"fairness_sweep_scenarios_total" + label:  wantScenarios,
		"fairness_sweep_cache_hits_total" + label: wantHits,
		"fairness_sweep_computed_total" + label:   wantComputed,
		"fairness_sweep_trials_total" + label:     wantTrials,
		// The eval-latency histogram observes exactly one duration per
		// computed (non-cached) scenario.
		`fairness_eval_seconds_count{backend="montecarlo"}`: wantComputed,
	}
	for id, want := range checks {
		if got := series[id]; got != want {
			t.Errorf("%s = %v, want %v (cold %+v, warm %+v)", id, got, want, cold.Stats, warm.Stats)
		}
	}

	// Snapshot and scrape are the same exposition by construction.
	snap := metrics.Snapshot()
	if len(snap) != len(series) {
		t.Errorf("Snapshot has %d series, scrape has %d", len(snap), len(series))
	}
	for id, v := range snap {
		if series[id] != v {
			t.Errorf("series %s: snapshot %v, scrape %v", id, v, series[id])
		}
	}
}

// TestTraceStreamCoversSweepSpan asserts the NDJSON trace stream brackets
// each sweep with sweep_start/sweep_done and carries one sweep_eval per
// unique scenario — on this cold cache that equals Stats.Computed —
// every line being valid JSON with a timestamp.
func TestTraceStreamCoversSweepSpan(t *testing.T) {
	specs := telemetryTestSpecs(t)
	var traceBuf bytes.Buffer
	eng := fairness.NewEngine(
		fairness.WithCache(fairness.NewSweepCache(len(specs))),
		fairness.WithTelemetry(nil, fairness.NewTracer(&traceBuf)),
	)
	rep, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	events := map[string]int{}
	sc := bufio.NewScanner(&traceBuf)
	for sc.Scan() {
		var ev struct {
			TS    string `json:"ts"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if ev.TS == "" || ev.Event == "" {
			t.Fatalf("trace line %q missing ts/event", sc.Text())
		}
		events[ev.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["sweep_start"] != 1 || events["sweep_done"] != 1 {
		t.Errorf("events %v: want exactly one sweep_start and one sweep_done", events)
	}
	if got, want := events["sweep_eval"], rep.Stats.Computed; got != want {
		t.Errorf("%d sweep_eval events, want %d (one per computed scenario)", got, want)
	}
}

// TestEngineDefaultMetricsRegistry asserts every engine meters itself
// even without WithTelemetry, readable through Engine.Metrics.
func TestEngineDefaultMetricsRegistry(t *testing.T) {
	specs := telemetryTestSpecs(t)
	eng := fairness.NewEngine()
	rep, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	id := `fairness_sweep_scenarios_total{backend="montecarlo"}`
	if got, want := snap[id], float64(rep.Stats.Scenarios); got != want {
		t.Errorf("%s = %v, want %v", id, got, want)
	}
}

// TestMetricsHandlerMethods pins the endpoint's method discipline.
func TestMetricsHandlerMethods(t *testing.T) {
	ts := httptest.NewServer(fairness.MetricsHandler(fairness.NewMetricsRegistry()))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
}
