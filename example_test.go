package fairness_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	fairness "repro"
)

// ExampleEngine_Evaluate assesses one protocol instance ad hoc: ML-PoS
// with the paper's block reward is expectationally fair but fails
// (ε,δ)-robust fairness at this horizon.
func ExampleEngine_Evaluate() {
	eng := fairness.NewEngine()
	verdict, err := eng.Evaluate(context.Background(),
		fairness.NewMLPoS(0.01), fairness.TwoMiner(0.2),
		fairness.WithTrials(400), fairness.WithBlocks(2000), fairness.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("expectational=%t robust=%t\n", verdict.ExpectationalFair, verdict.RobustFair)
	// Output:
	// expectational=true robust=false
}

// ExampleEngine_Sweep runs a declarative scenario grid through the
// closed-form theory backend — no sampling, certified verdicts.
func ExampleEngine_Sweep() {
	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Stake: 0.2, Blocks: 5000},
		Protocols: []string{"pow", "mlpos", "cpos"},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	eng := fairness.NewEngine(fairness.WithBackend(fairness.TheoryBackend()))
	report, err := eng.Sweep(context.Background(), specs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, o := range report.Outcomes {
		fmt.Printf("%-6s robust=%t\n", o.Spec.Protocol, o.Verdict.RobustFair)
	}
	// Output:
	// pow    robust=true
	// mlpos  robust=false
	// cpos   robust=true
}

// ExampleEngine_Arena runs best-response strategy dynamics on one
// scenario: every miner may switch between the registered strategies
// (honest, selfish, selfish-delay, withhold — see StrategyNames) until
// no unilateral deviation pays. With 40% of the PoW hash power, the
// large miner is past the selfish-mining threshold: the equilibrium is
// not all-honest, and fairness is judged on the equilibrium revenue
// distribution rather than the honest baseline.
func ExampleEngine_Arena() {
	eng := fairness.NewEngine()
	out, err := eng.Arena(context.Background(),
		fairness.Scenario{Protocol: "pow", Stake: 0.4, Miners: 5,
			Blocks: 400, Trials: 30, Seed: 17},
		fairness.ArenaConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	eq := out.Arena
	fmt.Printf("converged=%t deviators=%v attacker_gains=%t expectational=%t\n",
		eq.Converged, eq.Deviators, eq.Delta(0) > 0, out.Verdict.ExpectationalFair)
	// Output:
	// converged=true deviators=[0] attacker_gains=true expectational=false
}

// ExampleWithTelemetry meters a sweep: the registry's counters reconcile
// exactly with the report's statistics, and the same registry can be
// served over HTTP with fairness.MetricsHandler for Prometheus to
// scrape. Passing a fairness.NewTracer as the second argument would
// additionally stream NDJSON trace events for every evaluation.
func ExampleWithTelemetry() {
	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Stake: 0.2, Blocks: 5000},
		Protocols: []string{"pow", "mlpos", "cpos"},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	metrics := fairness.NewMetricsRegistry()
	eng := fairness.NewEngine(
		fairness.WithBackend(fairness.TheoryBackend()),
		fairness.WithTelemetry(metrics, nil),
	)
	if _, err := eng.Sweep(context.Background(), specs); err != nil {
		fmt.Println("error:", err)
		return
	}
	snap := metrics.Snapshot()
	fmt.Printf("scenarios=%v computed=%v\n",
		snap[`fairness_sweep_scenarios_total{backend="theory"}`],
		snap[`fairness_sweep_computed_total{backend="theory"}`])
	// Output:
	// scenarios=3 computed=3
}

// ExampleWithJobServer runs the multi-tenant job service end to end in
// one process: a JobManager backed by the local sweep engine, its
// /v1/jobs API mounted on a mux, and a JobClient submitting a named
// grid job, waiting for it, and paging back the merged report. The
// same wiring serves real deployments via fairnessd -jobs, with
// fairctl submit/jobs/cancel/results as the command-line client.
func ExampleWithJobServer() {
	mgr, err := fairness.NewJobManager(fairness.JobConfig{
		Runner: fairness.JobLocalRunner(fairness.SweepOptions{}, 0),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer mgr.Close()
	mux := http.NewServeMux()
	fairness.WithJobServer(mux, mgr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := fairness.NewJobClient(srv.URL)
	ctx := context.Background()
	info, err := client.Submit(ctx, fairness.JobSubmitBody{
		Name:   "nightly",
		Tenant: "acme",
		Seed:   7,
		Spec: json.RawMessage(
			`{"base":{"blocks":200,"trials":20},"protocols":["pow","slpos"],"stake":[0.2,0.3]}`),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if info, err = client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		fmt.Println("error:", err)
		return
	}
	_, outcomes, err := client.Results(ctx, info.ID)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(info.State, len(outcomes))
	// Output:
	// done 4
}
