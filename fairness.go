// Package fairness is the public facade of the blockchain-incentive
// fairness library, a from-scratch Go reproduction of
//
//	Huang, Tang, Cong, Lim, Xu.
//	"Do the Rich Get Richer? Fairness Analysis for Blockchain Incentives."
//	SIGMOD 2021.
//
// It exposes the incentive protocols the paper analyses (PoW, ML-PoS,
// SL-PoS, C-PoS, the FSL-PoS treatment and the Section 6.4 extensions),
// the two fairness notions (expectational and (ε,δ)-robust fairness), the
// theory calculators of Theorems 4.2/4.3/4.10, and a context-aware
// evaluation Engine with pluggable backends (Monte-Carlo sampling,
// closed-form theory, block-level chain simulation) and pluggable result
// caches (in-memory LRU, cross-process disk store).
//
// Quick start:
//
//	eng := fairness.NewEngine()
//	verdict, err := eng.Evaluate(ctx, fairness.NewMLPoS(0.01),
//		fairness.TwoMiner(0.2), fairness.WithTrials(1000), fairness.WithBlocks(5000))
//	fmt.Println(verdict) // expectationally fair, not robustly fair
//
// The top-level Evaluate, MonteCarlo and Sweep functions are deprecated
// wrappers over a default Engine, kept for compatibility.
//
// The internal packages carry the substrates: internal/chainsim is a
// block-level blockchain simulator with real SHA-256 puzzles standing in
// for the paper's Geth/Qtum/NXT deployments, and internal/experiments
// regenerates every figure and table of the evaluation section (see
// cmd/fairsim).
package fairness

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/arena"
	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/jobs"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Re-exported core types. See the internal packages for full method docs.
type (
	// Protocol advances a mining game by one block or epoch.
	Protocol = protocol.Protocol
	// State is the mutable state of one mining game.
	State = game.State
	// Params carries the (ε, δ) of robust fairness.
	Params = core.Params
	// Verdict summarises the empirical fairness of one protocol run.
	Verdict = core.Verdict
	// Result holds per-checkpoint λ samples from a Monte-Carlo run.
	Result = montecarlo.Result
	// MonteCarloConfig configures a Monte-Carlo run.
	MonteCarloConfig = montecarlo.Config
	// Rand is the deterministic random number generator.
	Rand = rng.Rand
	// Scenario is a declarative fairness scenario (protocol + params,
	// stake split, horizon, trials, fairness (ε, δ)), JSON-encodable and
	// content-hashable.
	Scenario = scenario.Spec
	// ScenarioGrid declares a sweep over scenario axes; Expand turns it
	// into a concrete scenario list.
	ScenarioGrid = scenario.Grid
	// Adversary is a Scenario's strategic-deviation block: one miner
	// running a registered attack strategy (see StrategyNames; "selfish",
	// "selfish-delay" on PoW, "withhold" on the compounding PoS models).
	Adversary = scenario.Adversary
	// Network is a Scenario's propagation block: a per-height fork rate
	// bending rewards toward large miners à la Sakurai & Shudo (PoW
	// only).
	Network = scenario.Network
	// SweepOptions configures a scenario sweep (workers, result cache,
	// streaming callback).
	SweepOptions = sweep.Options
	// SweepOutcome is the fairness evaluation of one scenario.
	SweepOutcome = sweep.Outcome
	// SweepReport aggregates a sweep's outcomes and throughput stats.
	SweepReport = sweep.Report
	// SweepCache is the in-memory LRU result cache shared across sweeps.
	SweepCache = sweep.Cache
	// CacheStore is the pluggable result-cache interface of the Engine:
	// NewSweepCache's LRU and NewDiskCache's cross-process store both
	// implement it.
	CacheStore = sweep.CacheStore
	// DiskCache is the content-addressed disk result cache; warm results
	// survive restarts and may be shared across processes.
	DiskCache = sweep.DiskCache
	// Evaluator is the pluggable scenario backend interface of the
	// Engine; see MonteCarloBackend, TheoryBackend and ChainSimBackend.
	Evaluator = sweep.Evaluator
	// Evaluation is the backend-independent result an Evaluator returns.
	Evaluation = sweep.Evaluation
	// AdaptiveTrials configures early-stopping Monte-Carlo evaluation;
	// see WithAdaptiveTrials and MonteCarloAdaptiveBackend.
	AdaptiveTrials = sweep.AdaptiveTrials
	// ClusterOptions configures distributed sweeps over fairnessd worker
	// nodes; pass it to WithCluster. See internal/cluster for the shard
	// protocol and failure semantics.
	ClusterOptions = cluster.Options
	// ClusterHealth is one worker's probed /v1/healthz view.
	ClusterHealth = cluster.Health
	// ClusterRegistry is the coordinator-side worker membership table of
	// a self-organizing cluster: workers register themselves (fairnessd
	// -register), heartbeat to stay live, and deregister on shutdown;
	// shard sizes adapt to the per-worker throughput it tracks. Serve it
	// over HTTP with NewClusterRegistryServer and pass it to runs via
	// ClusterOptions.Registry.
	ClusterRegistry = cluster.Registry
	// ClusterRegistryServer is the registry's HTTP face: /v1/register,
	// /v1/deregister, /v1/progress and a coordinator /v1/healthz.
	ClusterRegistryServer = cluster.RegistryServer
	// ClusterMember is one registered worker's membership view.
	ClusterMember = cluster.Member
	// ClusterProgress is a coordinator-side snapshot of a distributed
	// run: totals plus the per-shard claimed/streamed state of
	// everything in flight. See Engine option WithClusterProgress.
	ClusterProgress = cluster.Progress
	// ClusterShardProgress is the live view of one in-flight shard.
	ClusterShardProgress = cluster.ShardProgress
	// ClusterRegistrar is the worker-side registration client: register,
	// heartbeat, deregister on context end (what fairnessd -register
	// runs).
	ClusterRegistrar = cluster.Registrar
	// ClusterDispatchGate arbitrates shard dispatch across concurrent
	// cluster runs — ClusterOptions.Gate. The job service's fair-share
	// scheduler hands one to every job it runs.
	ClusterDispatchGate = cluster.DispatchGate
	// JobManager is the multi-tenant job service (internal/jobs): named
	// sweep jobs from many tenants multiplexed onto one execution
	// substrate under weighted fair-share scheduling, with per-tenant
	// quotas, cache namespaces and retention of finished results.
	JobManager = jobs.Manager
	// JobConfig tunes a JobManager (runner, capacity, quotas, weights,
	// retention, cache, telemetry).
	JobConfig = jobs.Config
	// JobSweepRunner executes one job's scenario list under a dispatch
	// gate; see JobClusterRunner and JobLocalRunner.
	JobSweepRunner = jobs.SweepRunner
	// JobScheduler is the manager's stride-based fair-share arbiter.
	JobScheduler = jobs.Scheduler
	// JobSubmitRequest is one named in-process sweep submission.
	JobSubmitRequest = jobs.SubmitRequest
	// JobSubmitBody is the POST /v1/jobs wire format (spec as a grid or
	// scenario array, like fairsweep -spec files).
	JobSubmitBody = jobs.SubmitBody
	// JobInfo is one job's externally visible lifecycle snapshot.
	JobInfo = jobs.JobInfo
	// JobState is a job's lifecycle position; see JobStateQueued et al.
	JobState = jobs.JobState
	// JobResultsPage is one page of a finished job's merged outcomes
	// with an opaque continuation token.
	JobResultsPage = jobs.ResultsPage
	// JobServer is the /v1/jobs HTTP face of a JobManager; mount it with
	// WithJobServer or Register.
	JobServer = jobs.Server
	// JobClient is the /v1/jobs HTTP client — what fairctl submit/jobs/
	// cancel/results and cmd/fairload drive.
	JobClient = jobs.Client
)

// Job lifecycle states: queued → running → done/failed/cancelled.
const (
	JobStateQueued    = jobs.StateQueued
	JobStateRunning   = jobs.StateRunning
	JobStateDone      = jobs.StateDone
	JobStateFailed    = jobs.StateFailed
	JobStateCancelled = jobs.StateCancelled
)

// Job service errors, mapped onto HTTP statuses by the JobServer.
var (
	ErrJobQuota       = jobs.ErrQuota
	ErrJobUnknown     = jobs.ErrUnknownJob
	ErrJobNotFinished = jobs.ErrNotFinished
	ErrJobPageToken   = jobs.ErrPageToken
	ErrJobsClosed     = jobs.ErrClosed
)

// NewJobManager builds the multi-tenant job service over cfg.Runner.
// Close it to cancel live jobs and join their goroutines.
func NewJobManager(cfg JobConfig) (*JobManager, error) { return jobs.NewManager(cfg) }

// NewJobServer wraps a JobManager in its /v1/jobs HTTP endpoints;
// mount them with Register(mux).
func NewJobServer(m *JobManager) *JobServer { return jobs.NewServer(m) }

// WithJobServer mounts a manager's /v1/jobs API on mux and returns the
// server — the one-liner fairnessd -jobs and embedding applications use.
func WithJobServer(mux *http.ServeMux, m *JobManager) *JobServer {
	s := jobs.NewServer(m)
	s.Register(mux)
	return s
}

// NewJobClient returns a client for one job server's /v1/jobs API
// (base "host:port" or a full URL).
func NewJobClient(base string) *JobClient { return jobs.NewClient(base) }

// JobClusterRunner executes each job as one distributed cluster run
// over the shared worker pool described by base (its Gate and Cache are
// overridden per job).
func JobClusterRunner(base ClusterOptions) JobSweepRunner { return jobs.ClusterRunner(base) }

// JobLocalRunner executes jobs in-process with sweep options opts,
// pacing through the fair-share gate in chunks of at most chunk
// scenarios (0 = 4) so concurrent tenants interleave without a cluster.
func JobLocalRunner(opts SweepOptions, chunk int) JobSweepRunner {
	return jobs.LocalRunner(opts, chunk)
}

// JobTenantCache namespaces a base result cache for one tenant — the
// isolation the JobManager applies around JobConfig.Cache.
func JobTenantCache(tenant string, base CacheStore) CacheStore {
	return jobs.TenantCache(tenant, base)
}

type (
	// Capabilities declares which scenario features — protocols,
	// withholding, adversary and network blocks — an Evaluator backend
	// covers; see Engine.Capabilities and BackendCapabilities.
	Capabilities = sweep.Capabilities
	// CapabilityError is the typed refusal an Evaluator returns for a
	// scenario feature outside its coverage. It unwraps to ErrBackend;
	// errors.As exposes the exact backend/feature/protocol fields.
	CapabilityError = sweep.CapabilityError
	// MetricsRegistry is the dependency-free metrics registry of the
	// telemetry layer: counters, gauges and histograms with exact
	// snapshot semantics, exposable in Prometheus text format. Wire one
	// into an Engine with WithTelemetry; every Engine without one meters
	// itself on a private registry (Engine.Metrics).
	MetricsRegistry = telemetry.Registry
	// MetricsCounter, MetricsGauge and MetricsHistogram are the handle
	// types a MetricsRegistry hands out.
	MetricsCounter   = telemetry.Counter
	MetricsGauge     = telemetry.Gauge
	MetricsHistogram = telemetry.Histogram
	// Tracer writes the engine's structured trace-event stream as
	// NDJSON: sweep spans, per-scenario evaluations with cache state,
	// and in cluster mode the full shard lifecycle (claims, streams,
	// acks, requeues, lease expiries, quarantines).
	Tracer = telemetry.Tracer
	// SpanContext identifies one span in one distributed trace — the
	// value the X-Fairness-Trace header carries across process hops.
	SpanContext = telemetry.SpanContext
	// Span is one timed operation in a trace; see StartSpan.
	Span = telemetry.Span
	// SpanRecord is one completed span as the flight recorder retains it
	// and GET /v1/traces serves it.
	SpanRecord = telemetry.SpanRecord
	// FlightRecorder is the bounded in-memory ring of recently completed
	// spans behind GET /v1/traces; wire one into an Engine with
	// WithTelemetry and serve it with TracesHandler.
	FlightRecorder = telemetry.FlightRecorder
	// SpanNode and SpanTree are the assembled causal view of one trace;
	// see BuildSpanTree.
	SpanNode = telemetry.SpanNode
	SpanTree = telemetry.SpanTree
)

// TraceHeader is the HTTP header propagating a span context across
// cluster hops ("<trace_id>-<span_id>").
const TraceHeader = telemetry.TraceHeader

// DefaultParams is the paper's evaluation setting: ε = 0.1, δ = 0.1.
var DefaultParams = core.DefaultParams

// ErrBackend reports a scenario outside the selected Evaluator backend's
// coverage (e.g. asking the theory backend about a protocol the paper
// proves no bound for).
var ErrBackend = sweep.ErrBackend

// Cluster-mode errors: a distributed sweep with no reachable worker, and
// a worker whose configured backend differs from the coordinator's.
var (
	ErrNoClusterWorkers       = cluster.ErrNoWorkers
	ErrClusterBackendMismatch = cluster.ErrBackendMismatch
)

// ClusterStatus probes every worker's /v1/healthz concurrently — the
// placement/diagnostics view fairctl status renders, including the
// per-worker shard counters (claimed/streamed/acked) and measured
// scenarios/sec behind adaptive shard sizing.
func ClusterStatus(ctx context.Context, workers []string) []ClusterHealth {
	return cluster.Status(ctx, workers, nil, 0)
}

// NewClusterRegistry builds a worker registry for a self-organizing
// cluster expecting the named backend ("" = montecarlo); ttl is the
// membership lease workers must heartbeat within (0 = 15s).
func NewClusterRegistry(backend string, ttl time.Duration) *ClusterRegistry {
	return cluster.NewRegistry(backend, ttl)
}

// NewClusterRegistryServer wraps a registry in its HTTP endpoints;
// mount them with Register(mux).
func NewClusterRegistryServer(reg *ClusterRegistry) *ClusterRegistryServer {
	return cluster.NewRegistryServer(reg)
}

// NewPoW returns the Proof-of-Work incentive model with block reward w
// (Section 2.1). Fair in both senses for long horizons.
func NewPoW(w float64) Protocol { return protocol.NewPoW(w) }

// NewMLPoS returns the multi-lottery PoS model (Qtum/Blackcoin, Section
// 2.2) with block reward w. Expectationally fair; robustly fair only for
// small w (Theorem 4.3).
func NewMLPoS(w float64) Protocol { return protocol.NewMLPoS(w) }

// NewSLPoS returns the single-lottery PoS model (NXT, Section 2.3) with
// block reward w. Preserves neither fairness notion; converges to
// monopoly almost surely (Theorem 4.9).
func NewSLPoS(w float64) Protocol { return protocol.NewSLPoS(w) }

// NewFSLPoS returns the paper's corrected single-lottery model (Section
// 6.2): win probability proportional to stake.
func NewFSLPoS(w float64) Protocol { return protocol.NewFSLPoS(w) }

// NewCPoS returns the compound PoS model of Ethereum 2.0 (Section 2.4)
// with proposer reward w, inflation reward v and p shards per epoch.
func NewCPoS(w, v float64, p int) Protocol { return protocol.NewCPoS(w, v, p) }

// NewNEO returns the NEO model (Section 6.4): PoS election, PoW-like
// fairness because rewards are paid in a separate gas asset.
func NewNEO(w float64) Protocol { return protocol.NewNEO(w) }

// NewAlgorand returns the Algorand model (Section 6.4): inflation-only
// rewards, absolutely fair.
func NewAlgorand(v float64) Protocol { return protocol.NewAlgorand(v) }

// NewEOS returns the delegated-PoS EOS model (Section 6.4): constant
// per-delegate proposer rewards, unfair in general.
func NewEOS(w, v float64) Protocol { return protocol.NewEOS(w, v) }

// NewHybrid returns the Filecoin-style hybrid model (Section 6.4): mining
// power blends a fixed resource (weight alpha) with compounding stake.
func NewHybrid(w, alpha float64) Protocol { return protocol.NewHybrid(w, alpha) }

// TwoMiner returns the canonical two-miner allocation {a, 1−a}.
func TwoMiner(a float64) []float64 { return game.TwoMiner(a) }

// EqualShares returns n equal initial shares.
func EqualShares(n int) []float64 { return game.EqualShares(n) }

// LeaderAndPack returns the Table 1 allocation: miner 0 holds a, the
// remaining m−1 miners split 1−a equally.
func LeaderAndPack(a float64, m int) []float64 { return game.LeaderAndPack(a, m) }

// NewGame creates a mining-game state over the (auto-normalised) initial
// allocation.
func NewGame(initial []float64) (*State, error) { return game.New(initial) }

// NewGameWithWithholding creates a game applying the Section 6.3 reward
// withholding treatment with period k.
func NewGameWithWithholding(initial []float64, k int) (*State, error) {
	return game.New(initial, game.WithWithholding(k))
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Run advances the game n steps under protocol p.
func Run(p Protocol, st *State, r *Rand, n int) { protocol.Run(p, st, r, n) }

// MonteCarlo runs repeated games and returns the per-checkpoint λ samples.
//
// Deprecated: use montecarlo via Engine runs, or MonteCarloContext when
// cancellation is needed. Retained as a thin compatibility wrapper.
func MonteCarlo(p Protocol, initial []float64, cfg MonteCarloConfig) (*Result, error) {
	return montecarlo.Run(p, initial, cfg)
}

// MonteCarloContext is MonteCarlo honouring ctx: cancellation stops the
// run promptly and returns ctx.Err().
func MonteCarloContext(ctx context.Context, p Protocol, initial []float64, cfg MonteCarloConfig) (*Result, error) {
	return montecarlo.RunContext(ctx, p, initial, cfg)
}

// EvalConfig configures the deprecated Evaluate wrapper.
//
// Zero-value caveat: every zero field means "use the default" — so
// Trials/Blocks 0, Seed 0 and a literal-zero Params are UNREACHABLE
// through this struct (Seed 0 silently becomes 1, zero Params become
// DefaultParams). The Engine.Evaluate option API distinguishes unset
// from zero: WithSeed(0) runs seed 0 and WithFairnessParams(Params{})
// collapses the fair area, both inexpressible here.
type EvalConfig struct {
	// Trials is the number of independent games (default 1000).
	Trials int
	// Blocks is the horizon (default 5000).
	Blocks int
	// Seed is the base RNG seed (default 1; a literal seed 0 cannot be
	// requested through this struct — use Engine.Evaluate + WithSeed(0)).
	Seed uint64
	// Params are the fairness parameters (default: ε = δ = 0.1; literal
	// zeros cannot be requested through this struct — use
	// Engine.Evaluate + WithFairnessParams).
	Params Params
	// WithholdEvery applies reward withholding when > 0.
	WithholdEvery int
}

// options translates the zero-means-default struct into the explicit
// option list, preserving the historical semantics exactly.
func (cfg EvalConfig) options() []EvalOption {
	var opts []EvalOption
	if cfg.Trials != 0 {
		opts = append(opts, WithTrials(cfg.Trials))
	}
	if cfg.Blocks != 0 {
		opts = append(opts, WithBlocks(cfg.Blocks))
	}
	if cfg.Seed != 0 {
		opts = append(opts, WithSeed(cfg.Seed))
	}
	if cfg.Params != (Params{}) {
		opts = append(opts, WithFairnessParams(cfg.Params))
	}
	if cfg.WithholdEvery > 0 {
		opts = append(opts, WithWithholding(cfg.WithholdEvery))
	}
	return opts
}

// Evaluate runs a Monte-Carlo experiment for miner 0 of the given initial
// allocation and assesses both fairness notions at the final horizon.
// An empty or all-zero allocation returns ErrInvalidAllocation.
//
// Deprecated: use Engine.Evaluate, which adds context cancellation and
// distinguishes unset options from explicit zeros (see EvalConfig's
// zero-value caveat). This wrapper delegates to a default Engine with
// background context and produces bit-identical verdicts.
func Evaluate(p Protocol, initial []float64, cfg EvalConfig) (Verdict, error) {
	return NewEngine().Evaluate(context.Background(), p, initial, cfg.options()...)
}

// Scenario sweep entry points (cmd/fairsweep is the CLI face of these).

// ExpandScenarios expands a scenario grid into its concrete, validated
// scenario list with derived per-scenario seeds.
func ExpandScenarios(g ScenarioGrid) ([]Scenario, error) { return g.Expand() }

// ScenarioHash returns the canonical content hash of a scenario — the
// sweep cache key, stable across JSON field order and input sugar.
func ScenarioHash(s Scenario) (string, error) { return s.Hash() }

// NewSweepCache returns an in-memory LRU result cache to share across
// sweeps (capacity <= 0 picks a default).
func NewSweepCache(capacity int) *SweepCache { return sweep.NewCache(capacity) }

// NewSweepCacheWithMetrics is NewSweepCache with the cache's hit, miss
// and eviction counters registered on m (labelled cache="memory"), so a
// /metrics scrape and the cache's Counters() read the same atomics.
func NewSweepCacheWithMetrics(capacity int, m *MetricsRegistry) *SweepCache {
	return sweep.NewCacheWithMetrics(capacity, m)
}

// NewDiskCache opens (creating if needed) a content-addressed disk
// result cache rooted at dir. Warm results survive restarts: a second
// process pointed at the same directory answers cached scenarios without
// recomputing them.
func NewDiskCache(dir string) (*DiskCache, error) { return sweep.NewDiskCache(dir) }

// NewDiskCacheWithMetrics is NewDiskCache with the store's hit, miss,
// write and eviction counters registered on m (labelled cache="disk").
func NewDiskCacheWithMetrics(dir string, m *MetricsRegistry) (*DiskCache, error) {
	return sweep.NewDiskCacheWithMetrics(dir, m)
}

// Telemetry layer (internal/telemetry): registries, tracing and the
// Prometheus-text endpoints every command exposes.

// NewMetricsRegistry returns an empty metrics registry — pass it to
// WithTelemetry and serve it with MetricsHandler.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefaultMetrics returns the process-global registry, where the
// simulation substrates (internal/montecarlo, internal/chainsim) tick
// their global trial/block/fork totals.
func DefaultMetrics() *MetricsRegistry { return telemetry.Default() }

// NewTracer returns a Tracer writing NDJSON trace events to w — what
// `fairsweep run -trace` and `fairctl run -trace` wire up. The caller
// owns w's lifetime.
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// NewTracerWithMetrics is NewTracer with the tracer's drop counter
// (events lost to marshal/write failures) registered as
// fairness_trace_dropped_total on m.
func NewTracerWithMetrics(w io.Writer, m *MetricsRegistry) *Tracer {
	return telemetry.NewTracerWithMetrics(w, m)
}

// NewFlightRecorder returns a flight recorder retaining the most recent
// capacity completed spans (<= 0 picks the default, 4096).
func NewFlightRecorder(capacity int) *FlightRecorder {
	return telemetry.NewFlightRecorder(capacity)
}

// StartSpan opens a span named name under parent (a zero parent mints a
// fresh trace). tr and rec may each be nil; the span still carries a
// propagatable Context.
func StartSpan(tr *Tracer, rec *FlightRecorder, parent SpanContext, service, name string, attrs ...any) *Span {
	return telemetry.StartSpan(tr, rec, parent, service, name, attrs...)
}

// ContextWithSpan returns a context carrying sc as the active span —
// how a caller parents an Engine run's spans under its own trace.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return telemetry.ContextWithSpan(ctx, sc)
}

// ParseTraceHeader decodes an X-Fairness-Trace header value.
func ParseTraceHeader(v string) (SpanContext, bool) { return telemetry.ParseTraceHeader(v) }

// TracesHandler serves a flight recorder at GET /v1/traces (all spans,
// or one trace with ?trace_id=).
func TracesHandler(rec *FlightRecorder) http.Handler { return telemetry.TracesHandler(rec) }

// BuildSpanTree assembles span records fetched from any number of
// flight recorders into per-trace causal trees, deduplicating by
// span_id.
func BuildSpanTree(spans []SpanRecord) *SpanTree { return telemetry.BuildSpanTree(spans) }

// MetricsHandler serves the given registries concatenated in Prometheus
// text exposition format — the /metrics endpoint of fairnessd and the
// fairctl coordinator. Metric names must be disjoint across registries.
func MetricsHandler(regs ...*MetricsRegistry) http.Handler { return telemetry.Handler(regs...) }

// ParseMetricsText parses Prometheus text exposition into a flat
// series-id -> value map — the scrape-side inverse of MetricsHandler,
// used by `fairctl top` and the CI reconciliation checks.
func ParseMetricsText(r io.Reader) (map[string]float64, error) { return telemetry.ParseText(r) }

// MonteCarloBackend returns the reference Evaluator: deterministic
// repeated mining games through the Monte-Carlo engine (the default
// backend of every Engine).
func MonteCarloBackend() Evaluator { return &sweep.MonteCarloEvaluator{} }

// MonteCarloAdaptiveBackend returns a Monte-Carlo Evaluator with
// adaptive early stopping: each scenario's Trials is a budget, the run
// halts once the unfair-probability verdict is resolved at the
// scenario's ε/δ with total error probability a.Confidence, and the
// executed trial count — together with the achieved eps/delta
// certificate — is reported in every outcome. Zero fields of a resolve
// to the montecarlo package defaults. The evaluator's Name encodes the
// normalised rule ("montecarlo+es(...)"), so adaptive results never
// share a cache or cluster namespace with exhaustive runs.
func MonteCarloAdaptiveBackend(a AdaptiveTrials) Evaluator {
	return &sweep.MonteCarloEvaluator{Adaptive: &a}
}

// TheoryBackend returns the closed-form Evaluator built on the paper's
// theorems (4.2 exact binomial for PoW, 4.3/4.10 Azuma bounds for
// ML-PoS/C-PoS, 4.9's mean-field skeleton for SL-PoS). It runs no
// trials; scenarios outside the theory's coverage return an error.
func TheoryBackend() Evaluator { return &sweep.TheoryEvaluator{} }

// ChainSimBackend returns the block-level simulation Evaluator: real
// SHA-256 puzzles and kernel lotteries through internal/chainsim. It is
// the most faithful and most expensive backend; it covers pow, mlpos,
// slpos, fslpos and cpos.
func ChainSimBackend() Evaluator { return &sweep.ChainSimEvaluator{} }

// ArenaBackend returns the best-response equilibrium Evaluator
// (internal/arena): each scenario is read as an honest baseline game,
// every miner iteratively adopts the best response from the config's
// strategy menu until play fixes, and the outcome reports the fairness
// of the fixed point together with the equilibrium profile, per-miner
// payoffs and honest-baseline deltas (Outcome.Arena). The zero
// ArenaConfig selects each protocol's default menu. Results are a pure
// function of (spec, config): local and cluster runs merge
// bit-identically.
func ArenaBackend(cfg ArenaConfig) Evaluator { return &sweep.ArenaEvaluator{Config: cfg} }

// BackendByName maps a CLI/service backend name onto an Evaluator: ""
// and "montecarlo" select the engine's default (a nil Evaluator),
// "theory", "chainsim" and "arena" their respective backends; an
// "arena(...)" name — the Name() encoding of a configured arena —
// parses back into that configuration. Every binary's -backend flag
// resolves through this one function, so the accepted names can never
// drift apart.
func BackendByName(name string) (Evaluator, error) {
	switch name {
	case "", "montecarlo":
		return nil, nil
	case "theory":
		return TheoryBackend(), nil
	case "chainsim":
		return ChainSimBackend(), nil
	case "arena":
		return ArenaBackend(ArenaConfig{}), nil
	default:
		if strings.HasPrefix(name, "arena(") {
			ev, err := sweep.ParseArenaName(name)
			if err != nil {
				return nil, err
			}
			return ev, nil
		}
		return nil, fmt.Errorf("unknown backend %q (known: montecarlo, theory, chainsim, arena)", name)
	}
}

// BackendCapabilities returns the declared scenario coverage of a named
// backend — the machine-readable form of the README capability matrix,
// also served by fairnessd /v1/healthz.
func BackendCapabilities(name string) (Capabilities, error) {
	ev, err := BackendByName(name)
	if err != nil {
		return Capabilities{}, err
	}
	return sweep.CapabilityOf(ev), nil
}

// The attack-strategy surface: strategy-registry introspection, the
// closed-form calculators, and the best-response arena types, grouped
// under the Strategy*/Attack names.

// Canonical strategy names of the built-in registry — the values a
// Scenario's Adversary.Strategy and an ArenaCandidate.Strategy accept
// (resolution is case- and separator-insensitive).
const (
	StrategyHonest       = scenario.StrategyHonest
	StrategySelfish      = scenario.StrategySelfish
	StrategySelfishDelay = scenario.StrategySelfishDelay
	StrategyWithhold     = scenario.StrategyWithhold
)

// StrategyNames returns the sorted canonical names of every registered
// attack strategy — the open enum behind Adversary.Strategy, grid
// strategy axes and arena candidate menus.
func StrategyNames() []string { return scenario.StrategyNames() }

// Arena types (internal/arena): best-response equilibrium dynamics over
// the strategy registry. See ArenaBackend and Engine.Arena.
type (
	// ArenaConfig is the arena's strategy menu and round bound; the zero
	// value selects each protocol's default menu.
	ArenaConfig = arena.Config
	// ArenaCandidate is one menu entry: a strategy name plus the
	// parameters it consumes. Its canonical text form "name:key=val,..."
	// is what ParseStrategy reads and the -strategy CLI flags accept.
	ArenaCandidate = arena.Candidate
	// ArenaEquilibrium is the fixed point an arena evaluation reports on
	// SweepOutcome.Arena: profile, payoffs and honest-baseline payoffs.
	ArenaEquilibrium = arena.Equilibrium
	// ArenaMove is one adopted best response of the dynamics.
	ArenaMove = arena.Move
)

// ParseStrategy parses one "name:key=val,..." strategy spelling (keys
// g/gamma, d/delay, e/every) into an ArenaCandidate; ParseStrategies
// parses a semicolon-separated list. This is the single parser behind
// every -strategy flag.
func ParseStrategy(s string) (ArenaCandidate, error) { return arena.ParseCandidate(s) }

// ParseStrategies parses a semicolon-separated strategy list
// ("honest;selfish:g=0.5;withhold:e=100").
func ParseStrategies(s string) ([]ArenaCandidate, error) { return arena.ParseCandidates(s) }

// Attack groups the closed-form attack calculators — the theory twins
// of the adversary/network scenario blocks.
var Attack AttackCalculators

// AttackCalculators is the method namespace behind the package-level
// Attack variable.
type AttackCalculators struct{}

// SelfishRevenue returns the closed-form Eyal–Sirer relative revenue of
// a selfish pool with hash share alpha and network advantage gamma —
// the stationary λ of a Scenario with a selfish Adversary block.
func (AttackCalculators) SelfishRevenue(alpha, gamma float64) (float64, error) {
	return attack.SelfishMining{Alpha: alpha, Gamma: gamma}.Revenue()
}

// SelfishThreshold returns the minimum hash share above which selfish
// mining beats honest mining for a given gamma: (1−γ)/(3−2γ).
func (AttackCalculators) SelfishThreshold(gamma float64) (float64, error) {
	return attack.ProfitThreshold(gamma)
}

// ForkEffectivePowers returns each miner's per-height canonical-block
// probability under the Sakurai–Shudo fork-race model at the given fork
// rate — the effective-power correction a Network block applies to a
// PoW scenario's win probabilities.
func (AttackCalculators) ForkEffectivePowers(shares []float64, forkRate float64) ([]float64, error) {
	return attack.ForkEffectivePowers(shares, forkRate)
}

// SelfishMiningRevenue returns the closed-form Eyal–Sirer relative
// revenue of a selfish pool.
//
// Deprecated: use Attack.SelfishRevenue.
func SelfishMiningRevenue(alpha, gamma float64) (float64, error) {
	return Attack.SelfishRevenue(alpha, gamma)
}

// SelfishMiningThreshold returns the selfish-mining profitability
// threshold (1−γ)/(3−2γ).
//
// Deprecated: use Attack.SelfishThreshold.
func SelfishMiningThreshold(gamma float64) (float64, error) {
	return Attack.SelfishThreshold(gamma)
}

// ForkEffectivePowers returns the Sakurai–Shudo effective-power
// correction at the given fork rate.
//
// Deprecated: use Attack.ForkEffectivePowers.
func ForkEffectivePowers(shares []float64, forkRate float64) ([]float64, error) {
	return Attack.ForkEffectivePowers(shares, forkRate)
}

// Sweep evaluates every scenario through the Monte-Carlo engine and
// aggregates per-scenario fairness verdicts with cache/throughput stats.
//
// Deprecated: use Engine.Sweep, which adds context cancellation,
// pluggable backends and streaming. This wrapper is the exact
// equivalent of NewEngine(...).Sweep(context.Background(), specs).
func Sweep(specs []Scenario, opts SweepOptions) (*SweepReport, error) {
	return sweep.Run(specs, opts)
}

// Theory calculators (Theorems 4.2, 4.3, 4.10 and the Pólya-urn limit).

// PoWMinBlocks returns Theorem 4.2's sufficient horizon for PoW.
func PoWMinBlocks(a float64, p Params) int { return core.PoWMinBlocks(a, p) }

// MLPoSSufficient reports Theorem 4.3's sufficient condition for ML-PoS.
func MLPoSSufficient(n int, w, a float64, p Params) bool { return core.MLPoSSufficient(n, w, a, p) }

// CPoSSufficient reports Theorem 4.10's sufficient condition for C-PoS.
func CPoSSufficient(n int, w, v float64, shards int, a float64, p Params) bool {
	return core.CPoSSufficient(n, w, v, shards, a, p)
}

// MLPoSLimitFairProb returns the limiting fair-area mass of the ML-PoS
// Beta(a/w, b/w) distribution (Section 4.3).
func MLPoSLimitFairProb(a, w, eps float64) float64 { return core.MLPoSLimitFairProb(a, w, eps) }

// SLPoSWinProbTwoMiner returns the SL-PoS next-block win probability for
// a miner with stake share z (Figure 1).
func SLPoSWinProbTwoMiner(z float64) float64 { return core.SLPoSWinProbTwoMiner(z) }

// SLPoSWinProbMulti returns each miner's SL-PoS win probability for an
// arbitrary allocation (Lemma 6.1).
func SLPoSWinProbMulti(shares []float64) []float64 { return core.SLPoSWinProbMulti(shares) }

// Ranking returns the paper's overall fairness ordering, fairest first.
func Ranking() []string { return core.Ranking() }

// Equitability returns the normalised dispersion Var(λ)/(a(1−a)) of final
// reward fractions — Fanti et al.'s compounding metric for comparison
// with robust fairness (Section 7).
func Equitability(samples []float64, a float64) float64 { return core.Equitability(samples, a) }

// SLPoSMeanFieldShare returns the fluid-limit SL-PoS stake share of a
// miner starting at a after n blocks with reward w — the deterministic
// skeleton of Theorem 4.9's stochastic approximation.
func SLPoSMeanFieldShare(a, w float64, n int) float64 {
	return core.SLPoSMeanField(w).ShareAt(a, n)
}

// SLPoSHalfLife returns the mean-field number of blocks for a sub-half
// SL-PoS miner to lose half her share, or -1 within maxBlocks.
func SLPoSHalfLife(a, w float64, maxBlocks int) int {
	return core.SLPoSHalfLife(a, w, maxBlocks)
}
