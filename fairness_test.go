package fairness

import (
	"math"
	"testing"
)

func TestEvaluateDefaults(t *testing.T) {
	v, err := Evaluate(NewPoW(0.01), TwoMiner(0.2), EvalConfig{Trials: 400, Blocks: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !v.ExpectationalFair {
		t.Errorf("PoW should be expectationally fair: %+v", v)
	}
	if !v.RobustFair {
		t.Errorf("PoW at n=4000 should be robustly fair: %+v", v)
	}
}

func TestEvaluateRanking(t *testing.T) {
	// The four protocols' empirical unfair probabilities must respect the
	// paper's ranking PoW ≤ C-PoS < ML-PoS < SL-PoS at the canonical
	// setting (ties allowed at the fair end).
	cfg := EvalConfig{Trials: 500, Blocks: 3000, Seed: 5}
	unfair := map[string]float64{}
	for _, p := range []Protocol{NewPoW(0.01), NewMLPoS(0.01), NewSLPoS(0.01), NewCPoS(0.01, 0.1, 32)} {
		v, err := Evaluate(p, TwoMiner(0.2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		unfair[p.Name()] = v.UnfairProbability
	}
	if !(unfair["PoW"] <= unfair["ML-PoS"] && unfair["C-PoS"] <= unfair["ML-PoS"] && unfair["ML-PoS"] < unfair["SL-PoS"]) {
		t.Errorf("ranking violated: %v", unfair)
	}
}

func TestEvaluateNormalisesShares(t *testing.T) {
	// Unnormalised input {2, 8} is the a = 0.2 game.
	v, err := Evaluate(NewPoW(0.01), []float64{2, 8}, EvalConfig{Trials: 300, Blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Share-0.2) > 1e-12 {
		t.Errorf("share = %v, want 0.2", v.Share)
	}
}

func TestEvaluateWithholding(t *testing.T) {
	base, err := Evaluate(NewFSLPoS(0.01), TwoMiner(0.2), EvalConfig{Trials: 600, Blocks: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	held, err := Evaluate(NewFSLPoS(0.01), TwoMiner(0.2), EvalConfig{Trials: 600, Blocks: 4000, Seed: 9, WithholdEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !(held.UnfairProbability < base.UnfairProbability) {
		t.Errorf("withholding %v should improve on %v", held.UnfairProbability, base.UnfairProbability)
	}
}

func TestEvaluateError(t *testing.T) {
	if _, err := Evaluate(NewPoW(0.01), []float64{1}, EvalConfig{}); err == nil {
		t.Error("single miner should error")
	}
}

func TestMonteCarloFacade(t *testing.T) {
	res, err := MonteCarlo(NewMLPoS(0.01), TwoMiner(0.3), MonteCarloConfig{Trials: 50, Blocks: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalSamples()) != 50 {
		t.Errorf("samples = %d", len(res.FinalSamples()))
	}
}

func TestRunFacade(t *testing.T) {
	st, err := NewGame(TwoMiner(0.2))
	if err != nil {
		t.Fatal(err)
	}
	Run(NewPoW(0.01), st, NewRand(1), 100)
	if st.Blocks != 100 {
		t.Errorf("blocks = %d", st.Blocks)
	}
	held, err := NewGameWithWithholding(TwoMiner(0.2), 10)
	if err != nil {
		t.Fatal(err)
	}
	Run(NewMLPoS(0.01), held, NewRand(1), 5)
	if held.PendingStake(0)+held.PendingStake(1) == 0 {
		t.Error("withholding game should hold pending stake after 5 blocks")
	}
}

func TestTheoryFacade(t *testing.T) {
	if n := PoWMinBlocks(0.2, DefaultParams); n < 3000 || n > 4000 {
		t.Errorf("PoWMinBlocks = %d", n)
	}
	if MLPoSSufficient(5000, 0.01, 0.2, DefaultParams) {
		t.Error("w=0.01 should fail Theorem 4.3")
	}
	if !CPoSSufficient(5000, 0.01, 0.1, 32, 0.2, DefaultParams) {
		t.Error("paper C-PoS setting should pass Theorem 4.10")
	}
	if p := SLPoSWinProbTwoMiner(0.2); p != 0.125 {
		t.Errorf("win prob = %v", p)
	}
	probs := SLPoSWinProbMulti([]float64{0.2, 0.8})
	if math.Abs(probs[0]-0.125) > 1e-6 {
		t.Errorf("multi win prob = %v", probs)
	}
	if MLPoSLimitFairProb(0.2, 1e-4, 0.1) < 0.99 {
		t.Error("tiny-reward limit should be nearly surely fair")
	}
	if len(Ranking()) != 4 {
		t.Error("ranking size")
	}
}

func TestSweepFacade(t *testing.T) {
	grid := ScenarioGrid{
		Base:      Scenario{Blocks: 400, Trials: 60, Seed: 2},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.3},
	}
	specs, err := ExpandScenarios(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d scenarios", len(specs))
	}
	cache := NewSweepCache(16)
	rep, err := Sweep(specs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Computed != 4 || rep.Stats.CacheHits != 0 {
		t.Errorf("cold stats: %+v", rep.Stats)
	}
	again, err := Sweep(specs, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Computed != 0 || again.Stats.CacheHits != 4 {
		t.Errorf("warm stats: %+v", again.Stats)
	}
	for i := range specs {
		if h, err := ScenarioHash(specs[i]); err != nil || h != rep.Outcomes[i].Hash {
			t.Errorf("hash mismatch at %d: %v %v", i, h, err)
		}
	}
}

func TestSweepMatchesEvaluate(t *testing.T) {
	// A one-scenario sweep must produce exactly the verdict Evaluate
	// produces for the same configuration — the sweep engine is a scaled
	// orchestration of the same computation, not a reimplementation.
	spec := Scenario{Protocol: "mlpos", W: 0.01, Stake: 0.2, Blocks: 500, Trials: 80, Seed: 23}
	rep, err := Sweep([]Scenario{spec}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(NewMLPoS(0.01), TwoMiner(0.2), EvalConfig{Trials: 80, Blocks: 500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Outcomes[0].Verdict; got != want {
		t.Errorf("sweep verdict %+v != Evaluate verdict %+v", got, want)
	}
}

func TestExtensionProtocolsFacade(t *testing.T) {
	// NEO ≈ PoW, Algorand absolutely fair, EOS unfair.
	neo, err := Evaluate(NewNEO(0.01), TwoMiner(0.2), EvalConfig{Trials: 400, Blocks: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !neo.RobustFair {
		t.Errorf("NEO should be robustly fair at n=4000: %+v", neo)
	}
	alg, err := Evaluate(NewAlgorand(0.1), TwoMiner(0.2), EvalConfig{Trials: 50, Blocks: 500})
	if err != nil {
		t.Fatal(err)
	}
	if alg.UnfairProbability != 0 {
		t.Errorf("Algorand unfair = %v, want exactly 0", alg.UnfairProbability)
	}
	eos, err := Evaluate(NewEOS(0.01, 0.1), TwoMiner(0.2), EvalConfig{Trials: 50, Blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if eos.ExpectationalFair {
		t.Errorf("EOS should not be expectationally fair: %+v", eos)
	}
}
