// Benchmarks regenerating every table and figure of the paper's
// evaluation, one bench target per exhibit (see DESIGN.md §4), plus
// micro-benchmarks of the protocol inner loops and the chainsim engines.
//
// Exhibit benches run a reduced-size configuration per iteration and
// report the experiment's headline metric through b.ReportMetric, so
// `go test -bench=.` both times the harness and re-derives the paper's
// qualitative results.
package fairness_test

import (
	"context"
	"math"
	"testing"

	fairness "repro"
	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// benchCfg is the per-iteration experiment scale: small enough for
// benchmarking, large enough that the reported metrics keep the paper's
// qualitative shape.
var benchCfg = experiments.Config{Quick: true, Trials: 60, Blocks: 400, Seed: 17}

// runExhibit benches one registered experiment and reports a chosen
// metric from its final iteration.
func runExhibit(b *testing.B, id, metric string) {
	runExhibitCfg(b, id, metric, benchCfg)
}

// runExhibitCfg is runExhibit with an explicit per-iteration scale, for
// exhibits whose default bench scale would be too heavy (hash-heavy P2P
// simulations).
func runExhibitCfg(b *testing.B, id, metric string, cfg experiments.Config) {
	b.Helper()
	spec, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		rep, err := spec.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			v, ok := rep.Metrics[metric]
			if !ok {
				b.Fatalf("metric %q missing from %s (have %v)", metric, id, rep.Metrics)
			}
			last = v
		}
	}
	if metric != "" {
		b.ReportMetric(last, metric)
	}
}

// --- Figure 1 ---------------------------------------------------------

func BenchmarkFig1SLPoSDrift(b *testing.B) { runExhibit(b, "fig1", "winprob_at_0.2") }

// --- Figure 2: per-protocol evolution panels --------------------------

func benchFig2Panel(b *testing.B, p fairness.Protocol) {
	b.Helper()
	var unfair float64
	for i := 0; i < b.N; i++ {
		res, err := montecarlo.Run(p, game.TwoMiner(0.2), montecarlo.Config{
			Trials: 60, Blocks: 400, Seed: 21,
		})
		if err != nil {
			b.Fatal(err)
		}
		u := res.UnfairProbSeries(0.2, 0.1)
		unfair = u[len(u)-1]
	}
	b.ReportMetric(unfair, "final_unfair")
}

func BenchmarkFig2PoW(b *testing.B)   { benchFig2Panel(b, fairness.NewPoW(0.01)) }
func BenchmarkFig2MLPoS(b *testing.B) { benchFig2Panel(b, fairness.NewMLPoS(0.01)) }
func BenchmarkFig2SLPoS(b *testing.B) { benchFig2Panel(b, fairness.NewSLPoS(0.01)) }
func BenchmarkFig2CPoS(b *testing.B)  { benchFig2Panel(b, fairness.NewCPoS(0.01, 0.1, 32)) }

// --- Figure 3 ---------------------------------------------------------

func BenchmarkFig3UnfairProbByStake(b *testing.B) { runExhibit(b, "fig3", "unfair_PoW_a20") }

// --- Figure 4: SL-PoS sweeps ------------------------------------------

func BenchmarkFig4SLPoSStakeSweep(b *testing.B)  { runExhibit(b, "fig4", "final_mean_a20") }
func BenchmarkFig4SLPoSRewardSweep(b *testing.B) { runExhibit(b, "fig4", "final_mean_w1e-02") }

// --- Figure 5: reward and inflation sweeps ----------------------------

func BenchmarkFig5MLPoSRewardSweep(b *testing.B)   { runExhibit(b, "fig5", "unfair_a_w=1e-02") }
func BenchmarkFig5SLPoSRewardSweep(b *testing.B)   { runExhibit(b, "fig5", "unfair_b_w=1e-02") }
func BenchmarkFig5CPoSRewardSweep(b *testing.B)    { runExhibit(b, "fig5", "unfair_c_w=1e-02") }
func BenchmarkFig5CPoSInflationSweep(b *testing.B) { runExhibit(b, "fig5", "unfair_d_v=0.10") }

// --- Figure 6 ---------------------------------------------------------

func BenchmarkFig6FSLPoS(b *testing.B)      { runExhibit(b, "fig6", "fsl_final_unfair") }
func BenchmarkFig6Withholding(b *testing.B) { runExhibit(b, "fig6", "withhold_final_unfair") }

// --- Table 1 ----------------------------------------------------------

func BenchmarkTable1MultiMiner(b *testing.B) { runExhibit(b, "table1", "unfair_SLPoS_m2") }

// --- Real-system analogue (Section 5.1) --------------------------------

func benchChainNetwork(b *testing.B, build func(salt uint64) chainsim.NetworkConfig, blocks int) {
	b.Helper()
	var lambda float64
	for i := 0; i < b.N; i++ {
		net, err := chainsim.NewNetwork(build(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := net.RunBlocks(blocks); err != nil {
			b.Fatal(err)
		}
		lambda = net.Lambda("A")
	}
	b.ReportMetric(lambda, "lambda_A")
	b.ReportMetric(float64(blocks)/b.Elapsed().Seconds()*float64(b.N), "blocks/s")
}

func BenchmarkChainSimPoW(b *testing.B) {
	benchChainNetwork(b, func(salt uint64) chainsim.NetworkConfig {
		return chainsim.NetworkConfig{
			Engine: &chainsim.PoWEngine{Target: 1 << 57, BlockReward: 10_000},
			Miners: []chainsim.MinerSpec{{Name: "A", Resource: 20}, {Name: "B", Resource: 80}},
			Seed:   salt, Salt: salt,
		}
	}, 50)
}

func BenchmarkChainSimMLPoS(b *testing.B) {
	perUnit := uint64(math.Exp2(64) / 32 / 1_000_000)
	benchChainNetwork(b, func(salt uint64) chainsim.NetworkConfig {
		return chainsim.NetworkConfig{
			Engine: &chainsim.MLPoSEngine{TargetPerUnit: perUnit, BlockReward: 10_000},
			Miners: []chainsim.MinerSpec{{Name: "A", Resource: 200_000}, {Name: "B", Resource: 800_000}},
			Salt:   salt,
		}
	}, 200)
}

func BenchmarkChainSimSLPoS(b *testing.B) {
	benchChainNetwork(b, func(salt uint64) chainsim.NetworkConfig {
		return chainsim.NetworkConfig{
			Engine: &chainsim.SLPoSEngine{BlockReward: 10_000},
			Miners: []chainsim.MinerSpec{{Name: "A", Resource: 200_000}, {Name: "B", Resource: 800_000}},
			Salt:   salt,
		}
	}, 200)
}

// --- Scenario sweep engine ---------------------------------------------

// sweepBenchSpecs is the 24-scenario benchmark grid (4 protocols × 3
// stakes × 2 rewards) at the shared bench scale.
func sweepBenchSpecs(b *testing.B) []fairness.Scenario {
	b.Helper()
	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 400, Trials: 60, Seed: 17},
		Protocols: []string{"pow", "mlpos", "slpos", "cpos"},
		Stake:     []float64{0.1, 0.2, 0.3},
		W:         []float64{0.005, 0.01},
	})
	if err != nil {
		b.Fatal(err)
	}
	return specs
}

// adaptiveBenchTrials is the stopping rule of the gated cold benches:
// the bench grid's tight ε makes every scenario decisively unfair, so
// the rule resolves each verdict at the minimum prefix and the cold
// sweep measures the batched early-stopping core at full effect.
var adaptiveBenchTrials = fairness.AdaptiveTrials{MinTrials: 8, Batch: 8}

// adaptiveSweepBenchSpecs is the gated cold benches' grid: the same 24
// scenarios as sweepBenchSpecs but with ε tightened until every
// protocol (including the tightly concentrated C-PoS) is decisively
// unfair, so the stopping rule resolves each verdict at 8–16 trials of
// the 60-trial budget.
func adaptiveSweepBenchSpecs(b *testing.B) []fairness.Scenario {
	b.Helper()
	specs, err := fairness.ExpandScenarios(fairness.ScenarioGrid{
		Base:      fairness.Scenario{Blocks: 400, Trials: 60, Seed: 17, Eps: 0.001},
		Protocols: []string{"pow", "mlpos", "slpos", "cpos"},
		Stake:     []float64{0.1, 0.2, 0.3},
		W:         []float64{0.005, 0.01},
	})
	if err != nil {
		b.Fatal(err)
	}
	return specs
}

// reportSweepTelemetry derives efficiency metrics from a sweep's metrics
// registry — the same series a /metrics scrape would expose — so the
// bench baseline (BENCH_*.json via cmd/benchgate) records cache-hit
// ratio and trials-per-scenario alongside raw throughput. Totals are
// cumulative across b.N iterations, so the ratios are per-iteration
// exact when every iteration behaves identically (as these benches
// assert). backend is the resolved evaluator name labelling the series.
func reportSweepTelemetry(b *testing.B, m *fairness.MetricsRegistry, backend string) {
	b.Helper()
	snap := m.Snapshot()
	label := `{backend="` + backend + `"}`
	scen := snap["fairness_sweep_scenarios_total"+label]
	if scen == 0 {
		b.Fatalf("telemetry registry recorded no scenarios under backend %q", backend)
	}
	b.ReportMetric(snap["fairness_sweep_cache_hits_total"+label]/scen, "hit_ratio")
	b.ReportMetric(snap["fairness_sweep_trials_total"+label]/scen, "trials/scenario")
}

// BenchmarkSweepColdCache measures end-to-end sweep throughput with every
// scenario computed from scratch — the perf baseline for the engine,
// running the batched early-stopping core: each scenario's 60 trials are
// a budget the stopping rule resolves early on this decisive grid.
func BenchmarkSweepColdCache(b *testing.B) {
	specs := adaptiveSweepBenchSpecs(b)
	ev := fairness.MonteCarloAdaptiveBackend(adaptiveBenchTrials)
	metrics := fairness.NewMetricsRegistry()
	var perSec, hits float64
	for i := 0; i < b.N; i++ {
		rep, err := fairness.Sweep(specs, fairness.SweepOptions{
			Cache:     fairness.NewSweepCache(len(specs)),
			Metrics:   metrics,
			Evaluator: ev,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Computed != len(specs) {
			b.Fatalf("cold sweep computed %d of %d", rep.Stats.Computed, len(specs))
		}
		for _, o := range rep.Outcomes {
			if !o.EarlyStopped {
				b.Fatalf("scenario %s ran its full budget (%d trials) — the bench grid must be decisive", o.Hash, o.TrialsRun)
			}
		}
		perSec = rep.Stats.ScenariosPerSec()
		hits = float64(rep.Stats.CacheHits)
	}
	b.ReportMetric(perSec, "scenarios/s")
	b.ReportMetric(hits, "cache_hits")
	reportSweepTelemetry(b, metrics, ev.Name())
}

// BenchmarkSweepWarmCache measures the same sweep answered entirely from
// the result cache — the upper bound cache hits buy.
func BenchmarkSweepWarmCache(b *testing.B) {
	specs := sweepBenchSpecs(b)
	cache := fairness.NewSweepCache(len(specs))
	if _, err := fairness.Sweep(specs, fairness.SweepOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	metrics := fairness.NewMetricsRegistry()
	var perSec, hits float64
	for i := 0; i < b.N; i++ {
		rep, err := fairness.Sweep(specs, fairness.SweepOptions{Cache: cache, Metrics: metrics})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Computed != 0 {
			b.Fatalf("warm sweep recomputed %d scenarios", rep.Stats.Computed)
		}
		perSec = rep.Stats.ScenariosPerSec()
		hits = float64(rep.Stats.CacheHits)
	}
	b.ReportMetric(perSec, "scenarios/s")
	b.ReportMetric(hits, "cache_hits")
	reportSweepTelemetry(b, metrics, "montecarlo")
}

// BenchmarkSweepFig3 times the sweep-engine reproduction of Figure 3,
// comparable head-to-head with BenchmarkFig3UnfairProbByStake.
func BenchmarkSweepFig3(b *testing.B) { runExhibit(b, "fig3-sweep", "unfair_PoW_a20") }

// --- Engine API: backend and disk-cache benchmarks ----------------------

// BenchmarkEngineSweepColdDiskCache measures a sweep writing every
// outcome through the content-addressed disk store — the persistence
// overhead on top of BenchmarkSweepColdCache's in-memory baseline. Like
// that baseline it runs the batched early-stopping core.
func BenchmarkEngineSweepColdDiskCache(b *testing.B) {
	specs := adaptiveSweepBenchSpecs(b)
	ctx := context.Background()
	var perSec, hits float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := fairness.NewDiskCache(b.TempDir()) // fresh dir: every pass is cold
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := fairness.NewEngine(
			fairness.WithCache(cache),
			fairness.WithAdaptiveTrials(adaptiveBenchTrials),
		).Sweep(ctx, specs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Computed != len(specs) {
			b.Fatalf("cold sweep computed %d of %d", rep.Stats.Computed, len(specs))
		}
		perSec = rep.Stats.ScenariosPerSec()
		hits = float64(rep.Stats.CacheHits)
	}
	b.ReportMetric(perSec, "scenarios/s")
	b.ReportMetric(hits, "cache_hits")
}

// BenchmarkEngineSweepWarmDiskCache measures the same sweep answered
// entirely from disk by a FRESH cache instance per iteration — the
// cross-process warm-start cost (open + read + decode, no compute).
func BenchmarkEngineSweepWarmDiskCache(b *testing.B) {
	specs := sweepBenchSpecs(b)
	ctx := context.Background()
	dir := b.TempDir()
	prewarm, err := fairness.NewDiskCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fairness.NewEngine(fairness.WithCache(prewarm)).Sweep(ctx, specs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var perSec, hits float64
	for i := 0; i < b.N; i++ {
		cache, err := fairness.NewDiskCache(dir) // new instance: no warm memory
		if err != nil {
			b.Fatal(err)
		}
		rep, err := fairness.NewEngine(fairness.WithCache(cache)).Sweep(ctx, specs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Computed != 0 {
			b.Fatalf("warm sweep recomputed %d scenarios", rep.Stats.Computed)
		}
		perSec = rep.Stats.ScenariosPerSec()
		hits = float64(rep.Stats.CacheHits)
	}
	b.ReportMetric(perSec, "scenarios/s")
	b.ReportMetric(hits, "cache_hits")
}

// BenchmarkEngineTheoryBackend measures the closed-form backend over the
// same grid — the upper bound a backend swap buys over Monte-Carlo.
func BenchmarkEngineTheoryBackend(b *testing.B) {
	specs := sweepBenchSpecs(b)
	ctx := context.Background()
	eng := fairness.NewEngine(fairness.WithBackend(fairness.TheoryBackend()))
	var perSec float64
	for i := 0; i < b.N; i++ {
		rep, err := eng.Sweep(ctx, specs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.TrialsRun != 0 {
			b.Fatalf("theory backend ran %d trials", rep.Stats.TrialsRun)
		}
		perSec = rep.Stats.ScenariosPerSec()
	}
	b.ReportMetric(perSec, "scenarios/s")
}

// BenchmarkArena times one best-response equilibrium solve on the PoW
// cell where deviation pays, and reports the round count the dynamics
// needed to fix play. The baseline gates a ceiling on that metric: the
// arena must keep converging in a handful of best-response rounds, not
// drift toward its MaxRounds bound.
func BenchmarkArena(b *testing.B) {
	spec := fairness.Scenario{Protocol: "pow", Stake: 0.4, Miners: 5, Blocks: 400, Trials: 30, Seed: 17}
	eng := fairness.NewEngine()
	var rounds float64
	for i := 0; i < b.N; i++ {
		out, err := eng.Arena(context.Background(), spec, fairness.ArenaConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Arena == nil || !out.Arena.Converged {
			b.Fatal("arena did not converge")
		}
		if len(out.Arena.Deviators) != 1 {
			b.Fatalf("deviators = %v, want exactly the 40%% miner", out.Arena.Deviators)
		}
		rounds = float64(out.Arena.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
	b.ReportMetric(float64(len(fairness.StrategyNames())), "strategies")
}

// --- Theory calculators ------------------------------------------------

func BenchmarkTheoryBounds(b *testing.B) {
	pr := core.DefaultParams
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += float64(core.PoWMinBlocks(0.2, pr))
		sink += core.MLPoSLimitFairProb(0.2, 0.01, 0.1)
		sink += core.CPoSConditionLHS(5000, 0.01, 0.1, 32)
		sink += core.PoWFairProbExact(5000, 0.2, 0.1)
	}
	if sink == 0 {
		b.Fatal("unexpected zero")
	}
}

// --- Ablations (DESIGN.md §6) ------------------------------------------

func BenchmarkAblationShards(b *testing.B)      { runExhibit(b, "ablation-shards", "unfair_P32") }
func BenchmarkAblationWithhold(b *testing.B)    { runExhibit(b, "ablation-withhold", "unfair_K1000") }
func BenchmarkAblationCirculation(b *testing.B) { runExhibit(b, "ablation-circulation", "unfair_10x") }

// --- Extension studies (Sections 6.4-6.5) -------------------------------

func BenchmarkPoolingIncentive(b *testing.B) { runExhibit(b, "pooling", "var_ratio_MLPoS") }
func BenchmarkHybridPowerSweep(b *testing.B) { runExhibit(b, "hybrid", "unfair_alpha0.50") }
func BenchmarkSelfishMining(b *testing.B)    { runExhibit(b, "selfish", "revenue_g0.0_a0.400") }
func BenchmarkP2PDelay(b *testing.B) {
	runExhibitCfg(b, "p2p-delay", "orphan_d8",
		experiments.Config{Quick: true, Trials: 8, Blocks: 40, Seed: 17})
}

// --- Protocol inner loops (steps/op) ------------------------------------

func benchStep(b *testing.B, p protocol.Protocol, miners int) {
	b.Helper()
	st := game.MustNew(game.LeaderAndPack(0.2, miners))
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(st, r)
	}
}

func BenchmarkStepPoW(b *testing.B)          { benchStep(b, protocol.NewPoW(0.01), 2) }
func BenchmarkStepMLPoS(b *testing.B)        { benchStep(b, protocol.NewMLPoS(0.01), 2) }
func BenchmarkStepSLPoS(b *testing.B)        { benchStep(b, protocol.NewSLPoS(0.01), 2) }
func BenchmarkStepFSLPoS(b *testing.B)       { benchStep(b, protocol.NewFSLPoS(0.01), 2) }
func BenchmarkStepCPoS32(b *testing.B)       { benchStep(b, protocol.NewCPoS(0.01, 0.1, 32), 2) }
func BenchmarkStepSLPoS10Miner(b *testing.B) { benchStep(b, protocol.NewSLPoS(0.01), 10) }
func BenchmarkStepHybrid(b *testing.B)       { benchStep(b, protocol.NewHybrid(0.01, 0.5), 2) }
