package fairness

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sweep"
)

// TestEvaluateEmptyAllocationRegression is the regression test for the
// empty/nil-initial crash path: both the deprecated wrapper and the
// Engine must return a validation error, never panic or surface an
// internal config error.
func TestEvaluateEmptyAllocationRegression(t *testing.T) {
	for _, initial := range [][]float64{nil, {}} {
		if _, err := Evaluate(NewPoW(0.01), initial, EvalConfig{}); !errors.Is(err, ErrInvalidAllocation) {
			t.Errorf("Evaluate(%v) err = %v, want ErrInvalidAllocation", initial, err)
		}
		_, err := NewEngine().Evaluate(context.Background(), NewPoW(0.01), initial)
		if !errors.Is(err, ErrInvalidAllocation) {
			t.Errorf("Engine.Evaluate(%v) err = %v, want ErrInvalidAllocation", initial, err)
		}
	}
	// All-zero totals are equally unassessable.
	if _, err := NewEngine().Evaluate(context.Background(), NewPoW(0.01), []float64{0, 0}); !errors.Is(err, ErrInvalidAllocation) {
		t.Errorf("zero-total err = %v, want ErrInvalidAllocation", err)
	}
}

func TestEngineEvaluateMatchesDeprecatedWrapper(t *testing.T) {
	// The wrapper's contract: bit-identical verdicts through the Engine.
	cfg := EvalConfig{Trials: 200, Blocks: 1000, Seed: 9}
	old, err := Evaluate(NewMLPoS(0.01), TwoMiner(0.2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine().Evaluate(context.Background(), NewMLPoS(0.01), TwoMiner(0.2),
		WithTrials(200), WithBlocks(1000), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if old != eng {
		t.Errorf("wrapper %+v != engine %+v", old, eng)
	}
}

func TestEngineSeedZeroIsDistinctFromUnset(t *testing.T) {
	// The satellite contract: the option API distinguishes unset from
	// zero. EvalConfig{Seed: 0} historically meant seed 1; WithSeed(0)
	// must actually run seed 0.
	eng := NewEngine()
	ctx := context.Background()
	p := func() Protocol { return NewMLPoS(0.1) }
	unset, err := eng.Evaluate(ctx, p(), TwoMiner(0.2), WithTrials(150), WithBlocks(400))
	if err != nil {
		t.Fatal(err)
	}
	seed1, err := eng.Evaluate(ctx, p(), TwoMiner(0.2), WithTrials(150), WithBlocks(400), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	seed0, err := eng.Evaluate(ctx, p(), TwoMiner(0.2), WithTrials(150), WithBlocks(400), WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	if unset != seed1 {
		t.Errorf("unset seed should default to 1:\n%+v\n%+v", unset, seed1)
	}
	if seed0 == seed1 {
		t.Errorf("WithSeed(0) produced the seed-1 run — zero is being treated as unset: %+v", seed0)
	}
}

func TestEngineZeroFairnessParamsHonoured(t *testing.T) {
	// ε = 0 collapses the fair area to the single point {a}: continuous
	// protocols are then (almost) never fair — a verdict unreachable
	// through the zero-means-default EvalConfig.
	v, err := NewEngine().Evaluate(context.Background(), NewMLPoS(0.01), TwoMiner(0.2),
		WithTrials(100), WithBlocks(300), WithFairnessParams(Params{Eps: 0, Delta: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if v.RobustFair || v.UnfairProbability < 0.99 {
		t.Errorf("zero params should collapse the fair area: %+v", v)
	}
}

func TestEngineEvaluateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewEngine().Evaluate(ctx, NewPoW(0.01), TwoMiner(0.2))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestEngineSweepMatchesDeprecatedSweep(t *testing.T) {
	specs, err := ExpandScenarios(ScenarioGrid{
		Base:      Scenario{Blocks: 400, Trials: 60, Seed: 2},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	old, err := Sweep(specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEngine().Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range old.Outcomes {
		if old.Outcomes[i].Verdict != rep.Outcomes[i].Verdict ||
			old.Outcomes[i].Equitability != rep.Outcomes[i].Equitability {
			t.Errorf("outcome %d differs between Sweep and Engine.Sweep", i)
		}
	}
}

func TestEngineObserverAndEvaluateScenario(t *testing.T) {
	var seen []string
	eng := NewEngine(
		WithCache(NewSweepCache(16)),
		WithObserver(func(o SweepOutcome) { seen = append(seen, o.Name) }),
		WithWorkers(1),
	)
	spec := Scenario{Name: "probe", Protocol: "pow", Stake: 0.2, Blocks: 300, Trials: 30, Seed: 4}
	out, err := eng.EvaluateScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "probe" || out.CacheHit {
		t.Errorf("first evaluation: %+v", out)
	}
	again, err := eng.EvaluateScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("second evaluation should hit the engine cache")
	}
	if len(seen) != 2 || seen[0] != "probe" {
		t.Errorf("observer saw %v", seen)
	}
}

func TestEngineStreamYieldsAllThenStopsEarly(t *testing.T) {
	specs, err := ExpandScenarios(ScenarioGrid{
		Base:      Scenario{Blocks: 300, Trials: 30, Seed: 6},
		Protocols: []string{"pow", "mlpos", "slpos", "fslpos"},
		Stake:     []float64{0.2, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithWorkers(2))

	count := 0
	for o, err := range eng.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		if o.Hash == "" {
			t.Error("streamed outcome missing hash")
		}
		count++
	}
	if count != len(specs) {
		t.Errorf("streamed %d outcomes, want %d", count, len(specs))
	}

	// Early break cancels the remaining work without deadlocking.
	got := 0
	for _, err := range eng.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		break
	}
	if got != 1 {
		t.Errorf("broke after %d outcomes", got)
	}
}

func TestEngineStreamSurfacesRunError(t *testing.T) {
	var last error
	n := 0
	for _, err := range NewEngine().Stream(context.Background(), []Scenario{{Protocol: "nope"}}) {
		last = err
		n++
	}
	if n != 1 || last == nil {
		t.Errorf("stream yielded %d items, last err %v; want the validation error", n, last)
	}
}

func TestEngineDiskCacheAcrossEngines(t *testing.T) {
	// Facade-level acceptance: engine two, with a fresh DiskCache over
	// the same directory, serves every completed scenario warm.
	dir := t.TempDir()
	specs, err := ExpandScenarios(ScenarioGrid{
		Base:      Scenario{Blocks: 300, Trials: 30, Seed: 8},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cache1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(WithCache(cache1)).Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	cache2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEngine(WithCache(cache2)).Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Computed != 0 || rep.Stats.CacheHits != len(specs) {
		t.Errorf("second engine stats: %+v", rep.Stats)
	}
}

func TestEngineTheoryBackendFacade(t *testing.T) {
	out, err := NewEngine(WithBackend(TheoryBackend())).EvaluateScenario(context.Background(),
		Scenario{Protocol: "pow", Stake: 0.2, Blocks: 4000, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Backend != "theory" || !out.Verdict.RobustFair {
		t.Errorf("theory outcome: %+v", out)
	}
}

// startClusterWorker boots one in-process worker node speaking the
// cluster shard protocol over a plain local sweep pipeline.
func startClusterWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ws := cluster.NewWorkerServer(cluster.LocalRunner(sweep.Options{}))
	mux := http.NewServeMux()
	ws.Register(mux)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "backend": "montecarlo"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func clusterTestSpecs(t *testing.T) []Scenario {
	t.Helper()
	specs, err := ExpandScenarios(ScenarioGrid{
		Base:      Scenario{Blocks: 150, Trials: 15},
		Protocols: []string{"pow", "mlpos"},
		Stake:     []float64{0.2, 0.4},
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestEngineSweepObservedStreamsAndAggregates(t *testing.T) {
	specs := clusterTestSpecs(t)
	var engineSaw, runSaw int
	eng := NewEngine(WithObserver(func(SweepOutcome) { engineSaw++ }))
	rep, err := eng.SweepObserved(context.Background(), specs, func(SweepOutcome) { runSaw++ })
	if err != nil {
		t.Fatal(err)
	}
	if engineSaw != len(specs) || runSaw != len(specs) {
		t.Errorf("observers saw engine=%d run=%d outcomes, want %d each", engineSaw, runSaw, len(specs))
	}
	if rep.Stats.Scenarios != len(specs) || rep.Stats.Computed != len(specs) {
		t.Errorf("stats: %+v", rep.Stats)
	}
}

func TestEngineStreamThroughCluster(t *testing.T) {
	// Stream in cluster mode: outcomes arrive through the coordinator's
	// merge path and the iterator contract is unchanged.
	w1, w2 := startClusterWorker(t), startClusterWorker(t)
	specs := clusterTestSpecs(t)
	local, err := NewEngine().Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	wantByName := map[string]Verdict{}
	for _, o := range local.Outcomes {
		wantByName[o.Name] = o.Verdict
	}
	eng := NewEngine(WithCluster(ClusterOptions{Workers: []string{w1.URL, w2.URL}}))
	seen := 0
	for o, err := range eng.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		if o.Verdict != wantByName[o.Name] {
			t.Errorf("streamed verdict for %q differs from local sweep", o.Name)
		}
		seen++
	}
	if seen != len(specs) {
		t.Errorf("stream yielded %d outcomes, want %d", seen, len(specs))
	}
}

func TestEngineWithClusterProgressObserver(t *testing.T) {
	// WithClusterProgress threads coordinator progress snapshots through
	// the engine: claims and streamed outcomes are observed live, and
	// the final snapshot reports the run done with every unique work
	// item delivered.
	w1, w2 := startClusterWorker(t), startClusterWorker(t)
	specs := clusterTestSpecs(t)
	var mu sync.Mutex
	var snaps []ClusterProgress
	eng := NewEngine(
		WithCluster(ClusterOptions{Workers: []string{w1.URL, w2.URL}}),
		WithClusterProgress(func(p ClusterProgress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		}),
	)
	if _, err := eng.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots observed")
	}
	uniq := map[string]bool{}
	for _, s := range specs {
		uniq[s.MustHash()] = true
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Total != len(uniq) || last.Delivered != len(uniq) {
		t.Errorf("final snapshot: %+v, want done with %d/%d", last, len(uniq), len(uniq))
	}
	sawShards := false
	for _, p := range snaps {
		if len(p.Shards) > 0 {
			sawShards = true
			break
		}
	}
	if !sawShards || last.ShardsClaimed == 0 || last.OutcomesStreamed == 0 {
		t.Errorf("progress never surfaced in-flight shards: last=%+v", last)
	}
}

// adversarialClusterSpecs expands a selfish-mining grid big and slow
// enough that a mid-shard cancellation lands while work is in flight.
func adversarialClusterSpecs(t *testing.T) []Scenario {
	t.Helper()
	specs, err := ExpandScenarios(ScenarioGrid{
		Base: Scenario{Protocol: "pow", Blocks: 4000, Trials: 400, Seed: 31,
			Adversary: &Adversary{Strategy: "selfish"}},
		Stake: []float64{0.35, 0.4, 0.45},
		Gamma: []float64{0, 0.25, 0.5, 0.75},
	})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// countGoroutines samples the goroutine count after a settle loop so
// already-exiting goroutines don't read as leaks.
func countGoroutines(settleBelow int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > settleBelow; i++ {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestEngineSweepObservedClusterAdversarialCancelMidShard(t *testing.T) {
	// SweepObserved in cluster mode over an adversarial scenario grid,
	// cancelled from the observer mid-shard: the coordinator must come
	// back promptly with a partial report and ctx.Err(), the worker's
	// in-flight selfish simulations must stop, and neither side may leak
	// goroutines. Runs under -race in CI, so the cancellation path's
	// synchronisation is exercised too.
	w1, w2 := startClusterWorker(t), startClusterWorker(t)
	specs := adversarialClusterSpecs(t)
	before := countGoroutines(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed atomic.Int64
	eng := NewEngine(WithCluster(ClusterOptions{Workers: []string{w1.URL, w2.URL}}))
	rep, err := eng.SweepObserved(ctx, specs, func(SweepOutcome) {
		if streamed.Add(1) == 1 {
			cancel() // first adversarial outcome lands mid-shard
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("cancelled cluster sweep must return a partial report, got %+v", rep)
	}
	filled := 0
	for _, o := range rep.Outcomes {
		if o.Hash != "" {
			filled++
		}
	}
	if filled == 0 || filled >= len(specs) {
		t.Errorf("partial report has %d/%d outcomes, want some but not all", filled, len(specs))
	}
	// The whole pipeline — coordinator keep-alives, shard streams, the
	// worker's local sweep pool and its per-trial selfish loops — must
	// drain; nothing may keep grinding after cancellation.
	if after := countGoroutines(before); after > before {
		t.Errorf("goroutines leaked by cancelled cluster sweep: %d -> %d", before, after)
	}
}

func TestEngineClusterCapabilityRefusalIsTypedAndFast(t *testing.T) {
	// A theory-backed cluster engine must refuse an adversarial spec with
	// the same typed CapabilityError a local run returns — before probing
	// or shipping anything (the worker pool here is unreachable on
	// purpose), instead of burning shard retries on a deterministic
	// refusal and surfacing a stringly shard error.
	eng := NewEngine(
		WithBackend(TheoryBackend()),
		WithCluster(ClusterOptions{Workers: []string{"127.0.0.1:1"}}),
	)
	spec := Scenario{Protocol: "pow", Stake: 0.4, Blocks: 100, Trials: 10,
		Adversary: &Adversary{Strategy: "selfish", Gamma: 0.5}}
	_, err := eng.Sweep(context.Background(), []Scenario{spec})
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("err = %v, want ErrBackend", err)
	}
	var capErr *CapabilityError
	if !errors.As(err, &capErr) {
		t.Fatalf("err = %T %v, want *CapabilityError", err, err)
	}
	if capErr.Backend != "theory" || capErr.Feature != "adversary" {
		t.Errorf("capability error = %+v", capErr)
	}
}

func TestEngineClusterBackendMismatchSurfaces(t *testing.T) {
	// A theory-configured engine must refuse montecarlo workers: silently
	// mixing backends would poison the cache namespace.
	w := startClusterWorker(t)
	eng := NewEngine(
		WithBackend(TheoryBackend()),
		WithCluster(ClusterOptions{Workers: []string{w.URL}}),
	)
	_, err := eng.Sweep(context.Background(), clusterTestSpecs(t))
	if !errors.Is(err, ErrClusterBackendMismatch) {
		t.Errorf("err = %v, want ErrClusterBackendMismatch", err)
	}
}
